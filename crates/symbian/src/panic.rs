//! The panic taxonomy of Table 2.
//!
//! A *panic* is a non-recoverable error condition signalled to the
//! kernel by a user or system component. The information associated
//! with a panic — its category (a short string naming the subsystem)
//! and its type (a small integer) — is delivered to the kernel, which
//! decides on the recovery action: terminating the offending
//! application or rebooting the device.
//!
//! Every panic the simulator can raise is one of the twenty codes the
//! paper observed in the field; [`codes`] lists them all with the
//! documentation text the paper reproduces from the Symbian OS
//! documentation.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The subsystem a panic originates from (the panic *category* string
/// in Symbian terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PanicCategory {
    /// Kernel Executive: raised while executing kernel-side code on
    /// behalf of a user thread (memory access, handles, timers).
    KernExec,
    /// E32USER-CBase: the CBase runtime — cleanup stack, active
    /// scheduler, CObject reference counting, heap bookkeeping.
    E32UserCBase,
    /// USER: descriptor (string/buffer) misuse in user code.
    User,
    /// Kernel Server: the kernel-side server thread managing kernel
    /// object lifecycles and request completion.
    KernSvr,
    /// View Server: monitors application responsiveness; panics
    /// applications whose active objects monopolize the scheduler.
    ViewSrv,
    /// EIKON listbox UI framework component.
    EikonListbox,
    /// EIKCOCTL UI controls library (edwin text editor control).
    Eikcoctl,
    /// The built-in telephony application.
    PhoneApp,
    /// The messaging server client library.
    MsgsClient,
    /// The multimedia framework audio client.
    MmfAudioClient,
}

impl PanicCategory {
    /// All categories, in the fixed order used by reports.
    pub const ALL: [PanicCategory; 10] = [
        PanicCategory::KernExec,
        PanicCategory::E32UserCBase,
        PanicCategory::User,
        PanicCategory::KernSvr,
        PanicCategory::ViewSrv,
        PanicCategory::EikonListbox,
        PanicCategory::Eikcoctl,
        PanicCategory::PhoneApp,
        PanicCategory::MsgsClient,
        PanicCategory::MmfAudioClient,
    ];

    /// The category string exactly as it appears in the paper.
    pub fn as_str(&self) -> &'static str {
        match self {
            PanicCategory::KernExec => "KERN-EXEC",
            PanicCategory::E32UserCBase => "E32USER-CBase",
            PanicCategory::User => "USER",
            PanicCategory::KernSvr => "KERN-SVR",
            PanicCategory::ViewSrv => "ViewSrv",
            PanicCategory::EikonListbox => "EIKON-LISTBOX",
            PanicCategory::Eikcoctl => "EIKCOCTL",
            PanicCategory::PhoneApp => "Phone.app",
            PanicCategory::MsgsClient => "MSGS Client",
            PanicCategory::MmfAudioClient => "MMFAudioClient",
        }
    }

    /// Parses a category string (as produced by [`Self::as_str`]).
    pub fn parse(s: &str) -> Option<PanicCategory> {
        Self::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// True for panics raised by system-level components (kernel,
    /// CBase runtime, descriptors used inside servers, view server) —
    /// the ones the paper found to usually lead to a high-level
    /// failure event.
    pub fn is_system_level(&self) -> bool {
        matches!(
            self,
            PanicCategory::KernExec
                | PanicCategory::E32UserCBase
                | PanicCategory::User
                | PanicCategory::ViewSrv
        )
    }

    /// True for panics of the two core built-in applications whose
    /// failure always reboots the phone (Section 6, Fig. 5 analysis).
    pub fn is_core_application(&self) -> bool {
        matches!(self, PanicCategory::PhoneApp | PanicCategory::MsgsClient)
    }

    /// True for plain application-level panics (view/audio widgets)
    /// that the paper observed never manifest as high-level events.
    pub fn is_application_level(&self) -> bool {
        matches!(
            self,
            PanicCategory::EikonListbox
                | PanicCategory::Eikcoctl
                | PanicCategory::MmfAudioClient
                | PanicCategory::KernSvr
        )
    }
}

impl fmt::Display for PanicCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A fully qualified panic code: category plus numeric type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PanicCode {
    /// The subsystem raising the panic.
    pub category: PanicCategory,
    /// The numeric panic type within the category.
    pub panic_type: u16,
}

impl PanicCode {
    /// Creates a code from its parts.
    pub const fn new(category: PanicCategory, panic_type: u16) -> Self {
        Self {
            category,
            panic_type,
        }
    }

    /// The documentation text for this code (from the Symbian OS
    /// documentation excerpts reproduced in Table 2), or a generic
    /// fallback for codes outside the taxonomy.
    pub fn documentation(&self) -> &'static str {
        codes::ALL
            .iter()
            .find(|(c, _)| c == self)
            .map(|(_, doc)| *doc)
            .unwrap_or("not documented")
    }

    /// True if this is one of the twenty codes observed in the study.
    pub fn is_in_taxonomy(&self) -> bool {
        codes::ALL.iter().any(|(c, _)| c == self)
    }

    /// Parses strings of the form `"KERN-EXEC 3"`.
    pub fn parse(s: &str) -> Option<PanicCode> {
        let (cat, ty) = s.rsplit_once(' ')?;
        Some(PanicCode::new(PanicCategory::parse(cat)?, ty.parse().ok()?))
    }
}

impl fmt::Display for PanicCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.category, self.panic_type)
    }
}

/// A raised panic event: the code plus the context the Panic Detector
/// records (which component raised it and a human-readable reason).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Panic {
    /// The panic code delivered to the kernel.
    pub code: PanicCode,
    /// The component (application or server) that raised it.
    pub raised_by: String,
    /// Mechanism-specific explanation, e.g. "dereferenced null".
    pub reason: String,
}

impl Panic {
    /// Creates a panic event.
    pub fn new(code: PanicCode, raised_by: impl Into<String>, reason: impl Into<String>) -> Self {
        Self {
            code,
            raised_by: raised_by.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Panic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {}: {}", self.code, self.raised_by, self.reason)
    }
}

impl std::error::Error for Panic {}

/// The twenty panic codes of Table 2, with their documentation.
pub mod codes {
    use super::{PanicCategory, PanicCode};

    /// Kernel Executive cannot find an object in the object index for
    /// the current process or thread (a bad raw handle number).
    pub const KERN_EXEC_0: PanicCode = PanicCode::new(PanicCategory::KernExec, 0);
    /// An unhandled exception: most commonly an access violation from
    /// dereferencing NULL; also general protection faults, invalid
    /// instructions and alignment checks.
    pub const KERN_EXEC_3: PanicCode = PanicCode::new(PanicCategory::KernExec, 3);
    /// A timer event was requested from an `RTimer` while another
    /// timer event was still outstanding.
    pub const KERN_EXEC_15: PanicCode = PanicCode::new(PanicCategory::KernExec, 15);
    /// Raised by the destructor of a `CObject` when the reference
    /// count is not zero.
    pub const E32USER_CBASE_33: PanicCode = PanicCode::new(PanicCategory::E32UserCBase, 33);
    /// Stray signal delivered to an active scheduler.
    pub const E32USER_CBASE_46: PanicCode = PanicCode::new(PanicCategory::E32UserCBase, 46);
    /// An active object's `RunL()` left and the active scheduler's
    /// default `Error()` function was invoked.
    pub const E32USER_CBASE_47: PanicCode = PanicCode::new(PanicCategory::E32UserCBase, 47);
    /// A leave occurred with no trap handler installed (in practice,
    /// `CTrapCleanup::New()` was not called before using the cleanup
    /// stack).
    pub const E32USER_CBASE_69: PanicCode = PanicCode::new(PanicCategory::E32UserCBase, 69);
    /// Not documented (heap bookkeeping inconsistency: freeing a cell
    /// twice).
    pub const E32USER_CBASE_91: PanicCode = PanicCode::new(PanicCategory::E32UserCBase, 91);
    /// Not documented (heap bookkeeping inconsistency: freeing an
    /// unknown cell / corrupt cell header).
    pub const E32USER_CBASE_92: PanicCode = PanicCode::new(PanicCategory::E32UserCBase, 92);
    /// A position value passed to a 16-bit descriptor member function
    /// (`Left`, `Right`, `Mid`, `Insert`, `Delete`, `Replace`) was out
    /// of bounds.
    pub const USER_10: PanicCode = PanicCode::new(PanicCategory::User, 10);
    /// An operation that moves or copies data to a 16-bit descriptor
    /// caused its length to exceed its maximum length (`Insert`,
    /// `Replace`, `Fill`, `Append`, `SetLength`, …).
    pub const USER_11: PanicCode = PanicCode::new(PanicCategory::User, 11);
    /// The Kernel Server could not find the object for a handle while
    /// servicing `RHandleBase::Close()` — most likely a corrupt
    /// handle.
    pub const KERN_SVR_0: PanicCode = PanicCode::new(PanicCategory::KernSvr, 0);
    /// Completing a client/server request found a null `RMessagePtr`.
    pub const KERN_SVR_70: PanicCode = PanicCode::new(PanicCategory::KernSvr, 70);
    /// An active object's event handler monopolized the thread's
    /// active scheduler loop, so the application's ViewSrv active
    /// object could not respond in time and the View Server closed the
    /// application.
    pub const VIEWSRV_11: PanicCode = PanicCode::new(PanicCategory::ViewSrv, 11);
    /// A listbox was used with no view defined to display it.
    pub const EIKON_LISTBOX_3: PanicCode = PanicCode::new(PanicCategory::EikonListbox, 3);
    /// A listbox was given an invalid current item index.
    pub const EIKON_LISTBOX_5: PanicCode = PanicCode::new(PanicCategory::EikonListbox, 5);
    /// Corrupt edwin state during inline editing.
    pub const EIKCOCTL_70: PanicCode = PanicCode::new(PanicCategory::Eikcoctl, 70);
    /// Not documented (internal error of the built-in telephony
    /// application).
    pub const PHONE_APP_2: PanicCode = PanicCode::new(PanicCategory::PhoneApp, 2);
    /// Failed to write data into an asynchronous call descriptor to be
    /// passed back to the client.
    pub const MSGS_CLIENT_3: PanicCode = PanicCode::new(PanicCategory::MsgsClient, 3);
    /// The `TInt` value passed to `SetVolume(TInt)` was 10 or more.
    pub const MMF_AUDIO_CLIENT_4: PanicCode = PanicCode::new(PanicCategory::MmfAudioClient, 4);

    /// Every code in the taxonomy with its documentation string, in
    /// Table 2 row order.
    pub const ALL: [(PanicCode, &str); 20] = [
        (KERN_EXEC_0, "Kernel Executive cannot find an object in the object index for the current process or thread using the specified object index number (the raw handle number)."),
        (KERN_EXEC_3, "An unhandled exception occurred. Exceptions have many causes, but the most common are access violations caused, for example, by dereferencing NULL; other causes include general protection faults, executing an invalid instruction and alignment checks."),
        (KERN_EXEC_15, "A timer event was requested from an asynchronous timer service (an RTimer) while a timer event was already outstanding (At(), After() or Lock() called again before the previous request completed)."),
        (E32USER_CBASE_33, "Raised by the destructor of a CObject: an attempt was made to delete the CObject while its reference count was not zero."),
        (E32USER_CBASE_46, "Raised by an active scheduler (CActiveScheduler); caused by a stray signal."),
        (E32USER_CBASE_47, "Raised by the Error() virtual member function of an active scheduler when an active object's RunL() function leaves and Error() was not replaced."),
        (E32USER_CBASE_69, "Raised when a leave occurs and no trap handler has been installed; in practice CTrapCleanup::New() was not called before using the cleanup stack."),
        (E32USER_CBASE_91, "Not documented (heap bookkeeping inconsistency observed as a double free)."),
        (E32USER_CBASE_92, "Not documented (heap bookkeeping inconsistency observed as an unknown or corrupt cell)."),
        (USER_10, "A position value passed to a 16-bit variant descriptor member function (Left(), Right(), Mid(), Insert(), Delete(), Replace()) was out of bounds."),
        (USER_11, "An operation moving or copying data to a 16-bit variant descriptor caused its length to exceed its maximum length (copying, appending, formatting, Insert(), Replace(), Fill(), Fillz(), ZeroTerminate() or SetLength())."),
        (KERN_SVR_0, "Raised by the Kernel Server when closing a kernel object in response to RHandleBase::Close() and the object represented by the handle cannot be found; the most likely cause is a corrupt handle."),
        (KERN_SVR_70, "Raised when attempting to complete a client/server request and the RMessagePtr is null."),
        (VIEWSRV_11, "An active object's event handler monopolized the thread's active scheduler loop and the application's ViewSrv active object could not respond in time; the View Server closed the application."),
        (EIKON_LISTBOX_3, "A listbox object from the EIKON framework was used with no view defined to display the object."),
        (EIKON_LISTBOX_5, "A listbox object from the EIKON framework was given an invalid Current Item Index."),
        (EIKCOCTL_70, "Corrupt edwin state for inline editing."),
        (PHONE_APP_2, "Not documented (internal error of the built-in telephony application)."),
        (MSGS_CLIENT_3, "Failed to write data into an asynchronous call descriptor to be passed back to the client."),
        (MMF_AUDIO_CLIENT_4, "The TInt value passed to SetVolume(TInt) was 10 or more."),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_has_twenty_codes() {
        assert_eq!(codes::ALL.len(), 20);
        // All distinct.
        let mut seen: Vec<PanicCode> = codes::ALL.iter().map(|(c, _)| *c).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn display_matches_paper_strings() {
        assert_eq!(codes::KERN_EXEC_3.to_string(), "KERN-EXEC 3");
        assert_eq!(codes::E32USER_CBASE_69.to_string(), "E32USER-CBase 69");
        assert_eq!(codes::MSGS_CLIENT_3.to_string(), "MSGS Client 3");
        assert_eq!(codes::VIEWSRV_11.to_string(), "ViewSrv 11");
    }

    #[test]
    fn parse_round_trips() {
        for (code, _) in codes::ALL {
            assert_eq!(PanicCode::parse(&code.to_string()), Some(code));
        }
        assert_eq!(PanicCode::parse("NOT-A-CATEGORY 3"), None);
        assert_eq!(PanicCode::parse("KERN-EXEC"), None);
        assert_eq!(PanicCode::parse("KERN-EXEC x"), None);
    }

    #[test]
    fn category_parse_round_trips() {
        for cat in PanicCategory::ALL {
            assert_eq!(PanicCategory::parse(cat.as_str()), Some(cat));
        }
        assert_eq!(PanicCategory::parse("nope"), None);
    }

    #[test]
    fn level_classification_is_a_partition() {
        for cat in PanicCategory::ALL {
            let flags = [
                cat.is_system_level(),
                cat.is_core_application(),
                cat.is_application_level(),
            ];
            assert_eq!(
                flags.iter().filter(|&&f| f).count(),
                1,
                "{cat} must be in exactly one class"
            );
        }
    }

    #[test]
    fn documentation_present_for_taxonomy() {
        for (code, _) in codes::ALL {
            assert!(code.is_in_taxonomy());
            assert!(!code.documentation().is_empty());
        }
        let outside = PanicCode::new(PanicCategory::User, 999);
        assert!(!outside.is_in_taxonomy());
        assert_eq!(outside.documentation(), "not documented");
    }

    #[test]
    fn panic_event_display() {
        let p = Panic::new(codes::KERN_EXEC_3, "Camera", "dereferenced null");
        let s = p.to_string();
        assert!(s.contains("KERN-EXEC 3"));
        assert!(s.contains("Camera"));
        assert!(s.contains("null"));
    }
}
