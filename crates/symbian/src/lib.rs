//! # symfail-symbian
//!
//! An executable model of the Symbian OS mechanisms whose failures the
//! paper measures. This crate is the *mechanistic substrate* of the
//! reproduction: every panic code in the paper's Table 2 is raised by
//! a concrete failing code path in one of these modules, not sampled
//! from a distribution.
//!
//! | Mechanism | Module | Panics it can raise |
//! |---|---|---|
//! | kernel executive, memory access | [`exec`] | `KERN-EXEC 3` |
//! | kernel object index, handles | [`object_index`] | `KERN-EXEC 0`, `KERN-SVR 0`, `E32USER-CBase 33` |
//! | asynchronous timers | [`timer`] | `KERN-EXEC 15` |
//! | heap management | [`heap`] | `E32USER-CBase 91`, `E32USER-CBase 92` |
//! | cleanup stack + trap/leave | [`cleanup`] | `E32USER-CBase 69` |
//! | active objects + active scheduler | [`active`] | `E32USER-CBase 46`, `E32USER-CBase 47`, `ViewSrv 11` |
//! | 16-bit descriptors | [`descriptor`] | `USER 10`, `USER 11` |
//! | client/server IPC | [`ipc`] | `KERN-SVR 70`, `MSGS Client 3` |
//! | UI framework (listbox, edwin) | [`servers::ui`] | `EIKON-LISTBOX 3/5`, `EIKCOCTL 70` |
//! | telephony / media servers | [`servers`] | `Phone.app 2`, `MMFAudioClient 4` |
//!
//! The design follows the OS described in Section 2 of the paper: a
//! micro-kernel with system services provided by server applications,
//! two-level multitasking (preemptive threads and cooperatively
//! scheduled active objects), and memory management built around the
//! cleanup stack, the trap/leave technique and two-phase construction.
//!
//! Mechanisms report failures as `Result<_, Panic>`; the embedding
//! simulator (the `symfail-phone` crate) routes raised panics into the
//! kernel's recovery policy, exactly as the real kernel decides
//! between terminating the offending application and rebooting the
//! device.
//!
//! # Example: a descriptor overflow raising `USER 11`
//!
//! ```
//! use symfail_symbian::descriptor::TBuf;
//! use symfail_symbian::panic::codes;
//!
//! let mut buf = TBuf::with_max_length(4);
//! buf.copy("abcd").unwrap();
//! let err = buf.append("e").unwrap_err();
//! assert_eq!(err.code, codes::USER_11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod cleanup;
pub mod descriptor;
pub mod exec;
pub mod heap;
pub mod ipc;
pub mod kernel;
pub mod leave;
pub mod object_index;
pub mod panic;
pub mod servers;
pub mod threads;
pub mod timer;

pub use leave::LeaveCode;
pub use panic::{Panic, PanicCategory, PanicCode};
