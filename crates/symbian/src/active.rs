//! Active objects and the active scheduler — Symbian's upper level of
//! multitasking.
//!
//! Multiple active objects (AOs) run within a thread, scheduled by a
//! non-preemptive, event-driven *active scheduler*: an AO issues an
//! asynchronous request (`SetActive`), the service signals completion,
//! and the scheduler dispatches the highest-priority signalled AO's
//! `RunL()` handler. Because dispatch is cooperative, a handler that
//! runs too long starves every other AO in the thread — including the
//! application's ViewSrv AO, which the View Server uses to probe
//! responsiveness; starving it gets the application panicked with
//! `ViewSrv 11`.
//!
//! Three panic codes of Table 2 live here:
//! * `E32USER-CBase 46` — a *stray signal*: a completion arrived for
//!   an AO that never had a request outstanding;
//! * `E32USER-CBase 47` — an AO's `RunL()` left and the scheduler's
//!   default `Error()` handler was not replaced;
//! * `ViewSrv 11` — an event handler monopolized the scheduler loop.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use symfail_sim_core::SimDuration;

use crate::leave::LeaveCode;
use crate::panic::{codes, Panic};

/// Identifier of an active object within its scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AoId(u32);

/// Lifecycle state of an active object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AoState {
    /// No request outstanding.
    Idle,
    /// A request was issued (`SetActive`) and has not completed.
    Active,
    /// The request completed; the AO awaits dispatch.
    Signalled,
}

/// The outcome of running an AO's `RunL()` handler, as reported by the
/// embedding simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The handler returned normally.
    Ok,
    /// The handler left with the given code.
    Leave(LeaveCode),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct AoRecord {
    name: String,
    priority: i32,
    state: AoState,
    /// Whether the application replaced the scheduler's `Error()`
    /// virtual function for this AO's leaves.
    handles_errors: bool,
}

/// A per-thread active scheduler.
///
/// # Example
///
/// ```
/// use symfail_sim_core::SimDuration;
/// use symfail_symbian::active::{ActiveScheduler, RunOutcome};
///
/// let mut sched = ActiveScheduler::new("Messages", SimDuration::from_secs(10));
/// let ao = sched.add("receive-sms", 0, true);
/// sched.set_active(ao)?;
/// sched.signal(ao)?;
/// let picked = sched.next_ready().unwrap();
/// assert_eq!(picked, ao);
/// sched.run(picked, RunOutcome::Ok, SimDuration::from_millis(5))?;
/// # Ok::<(), symfail_symbian::Panic>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActiveScheduler {
    app: String,
    viewsrv_timeout: SimDuration,
    aos: BTreeMap<u32, AoRecord>,
    next_id: u32,
    runs: u64,
}

impl ActiveScheduler {
    /// Creates a scheduler for the named application. `viewsrv_timeout`
    /// is the View Server's responsiveness deadline: any single
    /// handler running longer than this starves the ViewSrv AO and
    /// panics the application.
    pub fn new(app: &str, viewsrv_timeout: SimDuration) -> Self {
        Self {
            app: app.to_string(),
            viewsrv_timeout,
            aos: BTreeMap::new(),
            next_id: 0,
            runs: 0,
        }
    }

    /// Registers an active object. `handles_errors` records whether
    /// the application replaced the scheduler's `Error()` function for
    /// this AO (well-written applications always do).
    pub fn add(&mut self, name: &str, priority: i32, handles_errors: bool) -> AoId {
        let id = self.next_id;
        self.next_id += 1;
        self.aos.insert(
            id,
            AoRecord {
                name: name.to_string(),
                priority,
                state: AoState::Idle,
                handles_errors,
            },
        );
        AoId(id)
    }

    /// The application this scheduler belongs to.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// Number of registered active objects.
    pub fn len(&self) -> usize {
        self.aos.len()
    }

    /// True when no AOs are registered.
    pub fn is_empty(&self) -> bool {
        self.aos.is_empty()
    }

    /// Number of handler dispatches performed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// State of an AO, if it exists.
    pub fn state(&self, id: AoId) -> Option<AoState> {
        self.aos.get(&id.0).map(|r| r.state)
    }

    /// Issues a request on behalf of the AO (`SetActive`).
    ///
    /// # Errors
    ///
    /// Raises `E32USER-CBase 46` for an unknown AO (its request would
    /// signal a scheduler slot that no longer exists — observed as a
    /// stray signal), and is a no-op returning `Ok` when already
    /// active (real code panics with a code outside the study's
    /// taxonomy; the study never observed it, so the model tolerates
    /// it).
    pub fn set_active(&mut self, id: AoId) -> Result<(), Panic> {
        match self.aos.get_mut(&id.0) {
            Some(r) => {
                if r.state == AoState::Idle {
                    r.state = AoState::Active;
                }
                Ok(())
            }
            None => Err(self.stray_signal(id)),
        }
    }

    /// Delivers a completion signal to an AO.
    ///
    /// # Errors
    ///
    /// Raises `E32USER-CBase 46` (stray signal) when the AO does not
    /// exist or has no request outstanding.
    pub fn signal(&mut self, id: AoId) -> Result<(), Panic> {
        match self.aos.get_mut(&id.0) {
            Some(r) if r.state == AoState::Active => {
                r.state = AoState::Signalled;
                Ok(())
            }
            Some(_) => Err(self.stray_signal(id)),
            None => Err(self.stray_signal(id)),
        }
    }

    /// The highest-priority signalled AO, if any (ties broken by
    /// registration order — the scheduler walks its list in order).
    pub fn next_ready(&self) -> Option<AoId> {
        self.aos
            .iter()
            .filter(|(_, r)| r.state == AoState::Signalled)
            .max_by(|a, b| {
                a.1.priority.cmp(&b.1.priority).then(b.0.cmp(a.0)) // earlier id wins ties
            })
            .map(|(&id, _)| AoId(id))
    }

    /// Dispatches the AO's `RunL()` with the outcome and duration the
    /// embedding simulation determined.
    ///
    /// # Errors
    ///
    /// * `ViewSrv 11` when `duration` exceeds the View Server
    ///   deadline (the handler monopolized the scheduler loop);
    /// * `E32USER-CBase 47` when the handler left and the AO does not
    ///   handle errors;
    /// * `E32USER-CBase 46` when the AO was not in the signalled
    ///   state.
    pub fn run(
        &mut self,
        id: AoId,
        outcome: RunOutcome,
        duration: SimDuration,
    ) -> Result<(), Panic> {
        let record = match self.aos.get_mut(&id.0) {
            Some(r) if r.state == AoState::Signalled => r,
            _ => return Err(self.stray_signal(id)),
        };
        record.state = AoState::Idle;
        let name = record.name.clone();
        let handles_errors = record.handles_errors;
        self.runs += 1;
        if duration > self.viewsrv_timeout {
            return Err(Panic::new(
                codes::VIEWSRV_11,
                self.app.clone(),
                format!(
                    "active object '{name}' monopolized the active scheduler for {duration} \
                     (ViewSrv deadline {})",
                    self.viewsrv_timeout
                ),
            ));
        }
        match outcome {
            RunOutcome::Ok => Ok(()),
            RunOutcome::Leave(code) if handles_errors => {
                // Application's Error() handled the leave.
                let _ = code;
                Ok(())
            }
            RunOutcome::Leave(code) => Err(Panic::new(
                codes::E32USER_CBASE_47,
                self.app.clone(),
                format!("RunL of '{name}' left with {code} and Error() was not replaced"),
            )),
        }
    }

    fn stray_signal(&self, id: AoId) -> Panic {
        Panic::new(
            codes::E32USER_CBASE_46,
            self.app.clone(),
            format!("stray signal for active object slot {}", id.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> ActiveScheduler {
        ActiveScheduler::new("TestApp", SimDuration::from_secs(10))
    }

    #[test]
    fn request_signal_run_cycle() {
        let mut s = sched();
        let ao = s.add("worker", 0, true);
        assert_eq!(s.state(ao), Some(AoState::Idle));
        s.set_active(ao).unwrap();
        assert_eq!(s.state(ao), Some(AoState::Active));
        s.signal(ao).unwrap();
        assert_eq!(s.state(ao), Some(AoState::Signalled));
        s.run(ao, RunOutcome::Ok, SimDuration::from_millis(1))
            .unwrap();
        assert_eq!(s.state(ao), Some(AoState::Idle));
        assert_eq!(s.runs(), 1);
    }

    #[test]
    fn priority_dispatch_order() {
        let mut s = sched();
        let low = s.add("low", 0, true);
        let high = s.add("high", 10, true);
        for ao in [low, high] {
            s.set_active(ao).unwrap();
            s.signal(ao).unwrap();
        }
        assert_eq!(s.next_ready(), Some(high));
        s.run(high, RunOutcome::Ok, SimDuration::ZERO).unwrap();
        assert_eq!(s.next_ready(), Some(low));
    }

    #[test]
    fn equal_priority_ties_broken_by_registration_order() {
        let mut s = sched();
        let first = s.add("first", 5, true);
        let second = s.add("second", 5, true);
        for ao in [second, first] {
            s.set_active(ao).unwrap();
            s.signal(ao).unwrap();
        }
        assert_eq!(s.next_ready(), Some(first));
    }

    #[test]
    fn stray_signal_on_idle_ao_is_cbase_46() {
        let mut s = sched();
        let ao = s.add("worker", 0, true);
        let p = s.signal(ao).unwrap_err();
        assert_eq!(p.code, codes::E32USER_CBASE_46);
        assert_eq!(p.raised_by, "TestApp");
    }

    #[test]
    fn stray_signal_on_unknown_ao() {
        let mut s = sched();
        let p = s.signal(AoId(99)).unwrap_err();
        assert_eq!(p.code, codes::E32USER_CBASE_46);
        let p = s.set_active(AoId(99)).unwrap_err();
        assert_eq!(p.code, codes::E32USER_CBASE_46);
    }

    #[test]
    fn unhandled_leave_is_cbase_47() {
        let mut s = sched();
        let ao = s.add("careless", 0, false);
        s.set_active(ao).unwrap();
        s.signal(ao).unwrap();
        let p = s
            .run(
                ao,
                RunOutcome::Leave(LeaveCode::NotFound),
                SimDuration::ZERO,
            )
            .unwrap_err();
        assert_eq!(p.code, codes::E32USER_CBASE_47);
        assert!(p.reason.contains("KErrNotFound"));
    }

    #[test]
    fn handled_leave_is_fine() {
        let mut s = sched();
        let ao = s.add("careful", 0, true);
        s.set_active(ao).unwrap();
        s.signal(ao).unwrap();
        s.run(
            ao,
            RunOutcome::Leave(LeaveCode::NotFound),
            SimDuration::ZERO,
        )
        .unwrap();
    }

    #[test]
    fn monopolizing_handler_is_viewsrv_11() {
        let mut s = sched();
        let ao = s.add("spinner", 0, true);
        s.set_active(ao).unwrap();
        s.signal(ao).unwrap();
        let p = s
            .run(ao, RunOutcome::Ok, SimDuration::from_secs(11))
            .unwrap_err();
        assert_eq!(p.code, codes::VIEWSRV_11);
        assert!(p.reason.contains("spinner"));
    }

    #[test]
    fn run_on_unsignalled_ao_is_stray() {
        let mut s = sched();
        let ao = s.add("worker", 0, true);
        let p = s.run(ao, RunOutcome::Ok, SimDuration::ZERO).unwrap_err();
        assert_eq!(p.code, codes::E32USER_CBASE_46);
    }

    #[test]
    fn set_active_twice_is_tolerated() {
        let mut s = sched();
        let ao = s.add("worker", 0, true);
        s.set_active(ao).unwrap();
        s.set_active(ao).unwrap();
        assert_eq!(s.state(ao), Some(AoState::Active));
    }
}
