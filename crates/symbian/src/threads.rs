//! The lower level of Symbian's two-level multitasking: preemptive,
//! priority-based, time-sharing thread scheduling.
//!
//! The paper's interference finding — panics cluster while the user
//! performs *real-time* activities such as voice calls — is rooted in
//! this layer: real-time (high-priority) threads preempt interactive
//! ones, and the model exposes how much CPU each class obtains so the
//! fault injector can couple fault activation to preemption pressure.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use symfail_sim_core::SimDuration;

/// Identifier of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(u32);

/// Scheduling class of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ThreadClass {
    /// Interactive, time-shared work (UI applications).
    Interactive,
    /// System servers.
    Server,
    /// Hard real-time work (telephony signalling, audio).
    RealTime,
}

impl ThreadClass {
    /// Base priority of the class (higher runs first).
    pub fn base_priority(self) -> i32 {
        match self {
            ThreadClass::Interactive => 10,
            ThreadClass::Server => 20,
            ThreadClass::RealTime => 30,
        }
    }
}

/// Run state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadState {
    /// Eligible to run.
    Ready,
    /// Blocked on a request.
    Waiting,
    /// Terminated (by exit or by a panic).
    Dead,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ThreadRecord {
    name: String,
    class: ThreadClass,
    priority: i32,
    state: ThreadState,
    cpu: SimDuration,
}

/// A preemptive priority scheduler over simulated threads.
///
/// # Example
///
/// ```
/// use symfail_sim_core::SimDuration;
/// use symfail_symbian::threads::{ThreadClass, ThreadScheduler};
///
/// let mut ts = ThreadScheduler::new(SimDuration::from_millis(50));
/// let ui = ts.spawn("Messages", ThreadClass::Interactive);
/// let call = ts.spawn("Telephony", ThreadClass::RealTime);
/// assert_eq!(ts.pick_next(), Some(call)); // real-time preempts
/// ts.account(call, SimDuration::from_millis(50));
/// let _ = ui;
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadScheduler {
    quantum: SimDuration,
    threads: BTreeMap<u32, ThreadRecord>,
    next_id: u32,
    last_picked: Option<u32>,
}

impl ThreadScheduler {
    /// Creates a scheduler with the given time-slice quantum.
    pub fn new(quantum: SimDuration) -> Self {
        Self {
            quantum,
            threads: BTreeMap::new(),
            next_id: 0,
            last_picked: None,
        }
    }

    /// The time-slice quantum.
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// Creates a ready thread of the given class.
    pub fn spawn(&mut self, name: &str, class: ThreadClass) -> ThreadId {
        let id = self.next_id;
        self.next_id += 1;
        self.threads.insert(
            id,
            ThreadRecord {
                name: name.to_string(),
                class,
                priority: class.base_priority(),
                state: ThreadState::Ready,
                cpu: SimDuration::ZERO,
            },
        );
        ThreadId(id)
    }

    /// Number of threads that are not dead.
    pub fn live_count(&self) -> usize {
        self.threads
            .values()
            .filter(|t| t.state != ThreadState::Dead)
            .count()
    }

    /// State of a thread.
    pub fn state(&self, id: ThreadId) -> Option<ThreadState> {
        self.threads.get(&id.0).map(|t| t.state)
    }

    /// Marks a thread blocked.
    pub fn block(&mut self, id: ThreadId) {
        if let Some(t) = self.threads.get_mut(&id.0) {
            if t.state == ThreadState::Ready {
                t.state = ThreadState::Waiting;
            }
        }
    }

    /// Wakes a blocked thread.
    pub fn wake(&mut self, id: ThreadId) {
        if let Some(t) = self.threads.get_mut(&id.0) {
            if t.state == ThreadState::Waiting {
                t.state = ThreadState::Ready;
            }
        }
    }

    /// Terminates a thread (exit or kernel kill after a panic).
    pub fn kill(&mut self, id: ThreadId) {
        if let Some(t) = self.threads.get_mut(&id.0) {
            t.state = ThreadState::Dead;
        }
    }

    /// Chooses the next thread to run: the highest-priority ready
    /// thread, round-robin among equals (the thread picked last yields
    /// to its peers).
    pub fn pick_next(&mut self) -> Option<ThreadId> {
        let top = self
            .threads
            .iter()
            .filter(|(_, t)| t.state == ThreadState::Ready)
            .map(|(_, t)| t.priority)
            .max()?;
        let peers: Vec<u32> = self
            .threads
            .iter()
            .filter(|(_, t)| t.state == ThreadState::Ready && t.priority == top)
            .map(|(&id, _)| id)
            .collect();
        let pick = match self.last_picked {
            Some(last) => *peers.iter().find(|&&id| id > last).unwrap_or(&peers[0]),
            None => peers[0],
        };
        self.last_picked = Some(pick);
        Some(ThreadId(pick))
    }

    /// Accounts `elapsed` CPU time to a thread.
    pub fn account(&mut self, id: ThreadId, elapsed: SimDuration) {
        if let Some(t) = self.threads.get_mut(&id.0) {
            t.cpu += elapsed;
        }
    }

    /// Total CPU consumed by a thread.
    pub fn cpu_of(&self, id: ThreadId) -> Option<SimDuration> {
        self.threads.get(&id.0).map(|t| t.cpu)
    }

    /// Fraction of accounted CPU consumed by real-time threads — the
    /// preemption-pressure signal the fault model couples to.
    pub fn realtime_share(&self) -> f64 {
        let total: u64 = self.threads.values().map(|t| t.cpu.as_millis()).sum();
        if total == 0 {
            return 0.0;
        }
        let rt: u64 = self
            .threads
            .values()
            .filter(|t| t.class == ThreadClass::RealTime)
            .map(|t| t.cpu.as_millis())
            .sum();
        rt as f64 / total as f64
    }

    /// Name of a thread.
    pub fn name_of(&self, id: ThreadId) -> Option<&str> {
        self.threads.get(&id.0).map(|t| t.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> ThreadScheduler {
        ThreadScheduler::new(SimDuration::from_millis(50))
    }

    #[test]
    fn realtime_preempts_interactive() {
        let mut ts = sched();
        let ui = ts.spawn("ui", ThreadClass::Interactive);
        let rt = ts.spawn("telephony", ThreadClass::RealTime);
        let srv = ts.spawn("server", ThreadClass::Server);
        assert_eq!(ts.pick_next(), Some(rt));
        ts.block(rt);
        assert_eq!(ts.pick_next(), Some(srv));
        ts.block(srv);
        assert_eq!(ts.pick_next(), Some(ui));
    }

    #[test]
    fn round_robin_among_equals() {
        let mut ts = sched();
        let a = ts.spawn("a", ThreadClass::Interactive);
        let b = ts.spawn("b", ThreadClass::Interactive);
        let first = ts.pick_next().unwrap();
        let second = ts.pick_next().unwrap();
        let third = ts.pick_next().unwrap();
        assert_ne!(first, second);
        assert_eq!(first, third);
        assert!(first == a || first == b);
    }

    #[test]
    fn block_wake_kill_lifecycle() {
        let mut ts = sched();
        let t = ts.spawn("t", ThreadClass::Server);
        assert_eq!(ts.state(t), Some(ThreadState::Ready));
        ts.block(t);
        assert_eq!(ts.state(t), Some(ThreadState::Waiting));
        assert_eq!(ts.pick_next(), None);
        ts.wake(t);
        assert_eq!(ts.pick_next(), Some(t));
        ts.kill(t);
        assert_eq!(ts.state(t), Some(ThreadState::Dead));
        assert_eq!(ts.live_count(), 0);
        ts.wake(t); // waking the dead does nothing
        assert_eq!(ts.state(t), Some(ThreadState::Dead));
    }

    #[test]
    fn cpu_accounting_and_realtime_share() {
        let mut ts = sched();
        let ui = ts.spawn("ui", ThreadClass::Interactive);
        let rt = ts.spawn("rt", ThreadClass::RealTime);
        ts.account(ui, SimDuration::from_millis(300));
        ts.account(rt, SimDuration::from_millis(100));
        assert_eq!(ts.cpu_of(ui), Some(SimDuration::from_millis(300)));
        assert!((ts.realtime_share() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn realtime_share_empty_is_zero() {
        assert_eq!(sched().realtime_share(), 0.0);
    }

    #[test]
    fn name_lookup() {
        let mut ts = sched();
        let t = ts.spawn("Messages", ThreadClass::Interactive);
        assert_eq!(ts.name_of(t), Some("Messages"));
        assert_eq!(ts.name_of(ThreadId(99)), None);
    }
}
