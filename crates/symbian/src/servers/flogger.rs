//! `flogger` — Symbian's built-in file logger server, with the quirk
//! that motivated the paper's custom logger.
//!
//! The Symbian OS provides a server application (`flogger`) that lets
//! system/application modules log text. But to *access* the data
//! logged by a module, a directory with a well-defined, system-specific
//! name must already exist on the device — and the names of these
//! directories were **not made publicly available to developers**:
//! manufacturers used them during development and testing. The paper
//! cites exactly this limitation as a reason logging facilities on
//! smart phones were "limited and not fully exploited", motivating the
//! from-scratch failure data logger this repository reproduces.
//!
//! The model captures that behaviour: writes to a log whose directory
//! has not been created are silently dropped, exactly like the real
//! server.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

/// The `flogger` server.
///
/// # Example
///
/// ```
/// use symfail_symbian::servers::flogger::Flogger;
///
/// let mut flogger = Flogger::new();
/// // The module logs — but nobody created its magic directory:
/// flogger.write("Xdir", "radio", "signal lost");
/// assert_eq!(flogger.read("Xdir", "radio").len(), 0);
///
/// // A developer who knows the undocumented name can enable it:
/// flogger.create_log_dir("Xdir");
/// flogger.write("Xdir", "radio", "signal lost again");
/// assert_eq!(flogger.read("Xdir", "radio"), vec!["signal lost again"]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flogger {
    enabled_dirs: BTreeSet<String>,
    logs: BTreeMap<(String, String), Vec<String>>,
    dropped: u64,
}

impl Flogger {
    /// Creates the server with no log directories enabled — the state
    /// of every consumer phone.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the well-known (but undocumented) directory enabling a
    /// module's logging.
    pub fn create_log_dir(&mut self, dir: &str) {
        self.enabled_dirs.insert(dir.to_string());
    }

    /// True when a directory has been created.
    pub fn is_enabled(&self, dir: &str) -> bool {
        self.enabled_dirs.contains(dir)
    }

    /// Writes one line to `dir/file`. Silently dropped when the
    /// directory does not exist — the real server behaves the same
    /// way, which is why third parties could not harvest these logs.
    /// Returns whether the line was persisted.
    pub fn write(&mut self, dir: &str, file: &str, line: &str) -> bool {
        if !self.enabled_dirs.contains(dir) {
            self.dropped += 1;
            return false;
        }
        self.logs
            .entry((dir.to_string(), file.to_string()))
            .or_default()
            .push(line.to_string());
        true
    }

    /// Reads the lines of `dir/file` (empty when never enabled).
    pub fn read(&self, dir: &str, file: &str) -> Vec<&str> {
        self.logs
            .get(&(dir.to_string(), file.to_string()))
            .map(|v| v.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Lines silently dropped because their directory was missing —
    /// the tell-tale of the undocumented-directory design.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_without_directory_are_dropped() {
        let mut f = Flogger::new();
        assert!(!f.write("SecretDir", "net", "hello"));
        assert!(!f.write("SecretDir", "net", "again"));
        assert_eq!(f.dropped(), 2);
        assert!(f.read("SecretDir", "net").is_empty());
        assert!(!f.is_enabled("SecretDir"));
    }

    #[test]
    fn enabling_the_directory_persists_subsequent_writes() {
        let mut f = Flogger::new();
        f.write("Xdir", "radio", "lost before enabling");
        f.create_log_dir("Xdir");
        assert!(f.is_enabled("Xdir"));
        assert!(f.write("Xdir", "radio", "kept"));
        assert_eq!(f.read("Xdir", "radio"), vec!["kept"]);
        assert_eq!(f.dropped(), 1, "pre-enable line stays lost");
    }

    #[test]
    fn directories_are_independent() {
        let mut f = Flogger::new();
        f.create_log_dir("A");
        assert!(f.write("A", "x", "1"));
        assert!(!f.write("B", "x", "2"));
        assert_eq!(f.read("A", "x").len(), 1);
        assert!(f.read("B", "x").is_empty());
    }

    #[test]
    fn files_within_a_directory_are_separate() {
        let mut f = Flogger::new();
        f.create_log_dir("A");
        f.write("A", "one", "a");
        f.write("A", "two", "b");
        assert_eq!(f.read("A", "one"), vec!["a"]);
        assert_eq!(f.read("A", "two"), vec!["b"]);
    }
}
