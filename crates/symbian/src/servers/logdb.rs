//! The Database Log Server.
//!
//! Records the phone's activity events — the voice calls and text
//! messages that are the only activities registered on Symbian's log
//! database, as the paper notes for Table 3. The failure logger's Log
//! Engine reads this server to store the activity context of each
//! failure.

use serde::{Deserialize, Serialize};

use symfail_sim_core::{SimDuration, SimTime};

/// A loggable phone activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityKind {
    /// An incoming or outgoing voice call.
    VoiceCall,
    /// Creating, sending or receiving a text message.
    Message,
    /// Web/WAP browsing data session.
    DataSession,
}

impl ActivityKind {
    /// The label used in tables (matching the paper's Table 3 rows).
    pub fn as_str(self) -> &'static str {
        match self {
            ActivityKind::VoiceCall => "voice call",
            ActivityKind::Message => "message",
            ActivityKind::DataSession => "data session",
        }
    }

    /// True for the activities the paper classifies as real-time
    /// tasks.
    pub fn is_real_time(self) -> bool {
        matches!(self, ActivityKind::VoiceCall | ActivityKind::Message)
    }
}

/// One record in the log database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityRecord {
    /// When the activity started.
    pub start: SimTime,
    /// When it ended.
    pub end: SimTime,
    /// What it was.
    pub kind: ActivityKind,
}

impl ActivityRecord {
    /// True when the activity was in progress at `t` (inclusive
    /// bounds: the study's logger samples coarsely).
    pub fn covers(&self, t: SimTime) -> bool {
        self.start <= t && t <= self.end
    }
}

/// The Database Log Server.
///
/// # Example
///
/// ```
/// use symfail_sim_core::{SimDuration, SimTime};
/// use symfail_symbian::servers::logdb::{ActivityKind, LogDbServer};
///
/// let mut db = LogDbServer::with_retention(SimDuration::from_days(30));
/// db.record(SimTime::from_secs(10), SimTime::from_secs(70), ActivityKind::VoiceCall);
/// assert_eq!(db.activity_at(SimTime::from_secs(30)), Some(ActivityKind::VoiceCall));
/// assert_eq!(db.activity_at(SimTime::from_secs(200)), None);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogDbServer {
    retention: SimDuration,
    records: Vec<ActivityRecord>,
}

impl LogDbServer {
    /// Creates a log database that retains records for `retention`
    /// (old records are pruned as new ones arrive, like the bounded
    /// log of a real device).
    pub fn with_retention(retention: SimDuration) -> Self {
        Self {
            retention,
            records: Vec::new(),
        }
    }

    /// Records an activity spanning `[start, end]`.
    pub fn record(&mut self, start: SimTime, end: SimTime, kind: ActivityKind) {
        self.records.push(ActivityRecord {
            start,
            end: end.max(start),
            kind,
        });
        let cutoff = end.saturating_since(SimTime::ZERO);
        let horizon = cutoff.saturating_sub(self.retention);
        self.records
            .retain(|r| r.end.saturating_since(SimTime::ZERO) >= horizon);
    }

    /// The activity in progress at `t`, if any (the most recently
    /// started one wins if several overlap).
    pub fn activity_at(&self, t: SimTime) -> Option<ActivityKind> {
        self.records
            .iter()
            .filter(|r| r.covers(t))
            .max_by_key(|r| r.start)
            .map(|r| r.kind)
    }

    /// All records overlapping `[from, to]`.
    pub fn records_between(&self, from: SimTime, to: SimTime) -> Vec<ActivityRecord> {
        self.records
            .iter()
            .filter(|r| r.start <= to && r.end >= from)
            .copied()
            .collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> LogDbServer {
        LogDbServer::with_retention(SimDuration::from_days(7))
    }

    #[test]
    fn activity_lookup() {
        let mut d = db();
        d.record(
            SimTime::from_secs(100),
            SimTime::from_secs(160),
            ActivityKind::VoiceCall,
        );
        assert_eq!(
            d.activity_at(SimTime::from_secs(100)),
            Some(ActivityKind::VoiceCall)
        );
        assert_eq!(
            d.activity_at(SimTime::from_secs(160)),
            Some(ActivityKind::VoiceCall)
        );
        assert_eq!(d.activity_at(SimTime::from_secs(161)), None);
        assert_eq!(d.activity_at(SimTime::from_secs(99)), None);
    }

    #[test]
    fn overlapping_activities_latest_start_wins() {
        let mut d = db();
        d.record(
            SimTime::from_secs(0),
            SimTime::from_secs(100),
            ActivityKind::DataSession,
        );
        d.record(
            SimTime::from_secs(50),
            SimTime::from_secs(80),
            ActivityKind::Message,
        );
        assert_eq!(
            d.activity_at(SimTime::from_secs(60)),
            Some(ActivityKind::Message)
        );
        assert_eq!(
            d.activity_at(SimTime::from_secs(90)),
            Some(ActivityKind::DataSession)
        );
    }

    #[test]
    fn retention_prunes_old_records() {
        let mut d = LogDbServer::with_retention(SimDuration::from_secs(100));
        d.record(
            SimTime::from_secs(0),
            SimTime::from_secs(10),
            ActivityKind::Message,
        );
        d.record(
            SimTime::from_secs(500),
            SimTime::from_secs(510),
            ActivityKind::Message,
        );
        assert_eq!(d.len(), 1, "old record pruned");
    }

    #[test]
    fn records_between() {
        let mut d = db();
        d.record(
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            ActivityKind::Message,
        );
        d.record(
            SimTime::from_secs(30),
            SimTime::from_secs(40),
            ActivityKind::VoiceCall,
        );
        let hits = d.records_between(SimTime::from_secs(15), SimTime::from_secs(35));
        assert_eq!(hits.len(), 2);
        let none = d.records_between(SimTime::from_secs(21), SimTime::from_secs(29));
        assert!(none.is_empty());
    }

    #[test]
    fn end_clamped_to_start() {
        let mut d = db();
        d.record(
            SimTime::from_secs(50),
            SimTime::from_secs(10),
            ActivityKind::Message,
        );
        assert!(d.activity_at(SimTime::from_secs(50)).is_some());
    }

    #[test]
    fn real_time_classification() {
        assert!(ActivityKind::VoiceCall.is_real_time());
        assert!(ActivityKind::Message.is_real_time());
        assert!(!ActivityKind::DataSession.is_real_time());
    }
}
