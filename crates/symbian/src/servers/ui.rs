//! EIKON UI framework components: listbox and edwin.
//!
//! These raise the purely application-level panics of Table 2 — the
//! ones Figure 5 shows never manifest as a high-level failure, because
//! the kernel simply terminates the offending application:
//!
//! * `EIKON-LISTBOX 3` — using a listbox with no view defined;
//! * `EIKON-LISTBOX 5` — setting an invalid current item index;
//! * `EIKCOCTL 70` — corrupt edwin (text editor) state during inline
//!   editing.

use serde::{Deserialize, Serialize};

use crate::panic::{codes, Panic};

/// A listbox control from the EIKON framework.
///
/// # Example
///
/// ```
/// use symfail_symbian::servers::ui::ListBox;
/// use symfail_symbian::panic::codes;
///
/// let mut lb = ListBox::new("Contacts");
/// lb.set_items(vec!["Alice".into(), "Bob".into()]);
/// lb.attach_view();
/// lb.set_current_item_index(1)?;
/// assert_eq!(lb.draw()?, "Bob");
/// let p = lb.set_current_item_index(7).unwrap_err();
/// assert_eq!(p.code, codes::EIKON_LISTBOX_5);
/// # Ok::<(), symfail_symbian::Panic>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListBox {
    app: String,
    items: Vec<String>,
    current: usize,
    has_view: bool,
}

impl ListBox {
    /// Creates an empty listbox owned by the named application, with
    /// no view attached yet.
    pub fn new(app: &str) -> Self {
        Self {
            app: app.to_string(),
            items: Vec::new(),
            current: 0,
            has_view: false,
        }
    }

    /// Sets the items; the current index resets to zero.
    pub fn set_items(&mut self, items: Vec<String>) {
        self.items = items;
        self.current = 0;
    }

    /// Attaches the view that displays the listbox.
    pub fn attach_view(&mut self) {
        self.has_view = true;
    }

    /// Detaches the view (e.g. the containing pane was destroyed).
    pub fn detach_view(&mut self) {
        self.has_view = false;
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the listbox holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Sets the current item index.
    ///
    /// # Errors
    ///
    /// Raises `EIKON-LISTBOX 5` when `index` is out of range.
    pub fn set_current_item_index(&mut self, index: usize) -> Result<(), Panic> {
        if index >= self.items.len() {
            return Err(Panic::new(
                codes::EIKON_LISTBOX_5,
                self.app.clone(),
                format!(
                    "invalid current item index {index} for listbox of {} items",
                    self.items.len()
                ),
            ));
        }
        self.current = index;
        Ok(())
    }

    /// Draws the listbox, returning the highlighted item.
    ///
    /// # Errors
    ///
    /// Raises `EIKON-LISTBOX 3` when no view is attached, and
    /// `EIKON-LISTBOX 5` when the current index no longer points at an
    /// item (items shrank under it).
    pub fn draw(&self) -> Result<&str, Panic> {
        if !self.has_view {
            return Err(Panic::new(
                codes::EIKON_LISTBOX_3,
                self.app.clone(),
                "listbox used with no view defined to display the object",
            ));
        }
        self.items
            .get(self.current)
            .map(String::as_str)
            .ok_or_else(|| {
                Panic::new(
                    codes::EIKON_LISTBOX_5,
                    self.app.clone(),
                    format!(
                        "current item index {} invalid after items changed (len {})",
                        self.current,
                        self.items.len()
                    ),
                )
            })
    }
}

/// The edwin (editor window) text control, modelling the inline
/// editing state machine whose corruption raises `EIKCOCTL 70`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edwin {
    app: String,
    text: String,
    /// Span of an in-progress inline edit (e.g. predictive-text
    /// composition), if any.
    inline_span: Option<(usize, usize)>,
}

impl Edwin {
    /// Creates an empty editor owned by the named application.
    pub fn new(app: &str) -> Self {
        Self {
            app: app.to_string(),
            text: String::new(),
            inline_span: None,
        }
    }

    /// Current text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Begins an inline edit over `[start, end)` of the current text.
    ///
    /// # Errors
    ///
    /// Raises `EIKCOCTL 70` when the span is inverted or out of
    /// bounds — corrupt edwin state for inline editing.
    pub fn begin_inline_edit(&mut self, start: usize, end: usize) -> Result<(), Panic> {
        if start > end || end > self.text.chars().count() {
            return Err(self.corrupt(format!(
                "inline edit span {start}..{end} invalid for text of length {}",
                self.text.chars().count()
            )));
        }
        self.inline_span = Some((start, end));
        Ok(())
    }

    /// Commits the inline edit, replacing the span with `replacement`.
    ///
    /// # Errors
    ///
    /// Raises `EIKCOCTL 70` when no inline edit is in progress or the
    /// stored span no longer fits the text (state corrupted behind the
    /// control's back).
    pub fn commit_inline_edit(&mut self, replacement: &str) -> Result<(), Panic> {
        let (start, end) = self
            .inline_span
            .take()
            .ok_or_else(|| self.corrupt("commit with no inline edit in progress".to_string()))?;
        let chars: Vec<char> = self.text.chars().collect();
        if end > chars.len() {
            return Err(self.corrupt(format!(
                "stored inline span {start}..{end} exceeds text length {}",
                chars.len()
            )));
        }
        let mut out: String = chars[..start].iter().collect();
        out.push_str(replacement);
        out.extend(&chars[end..]);
        self.text = out;
        Ok(())
    }

    /// Replaces the whole text (outside of inline editing). Any
    /// in-progress inline edit is dropped — the corruption entry point
    /// used by the fault injector: a commit after this sees a stale
    /// span.
    pub fn set_text(&mut self, text: &str) {
        self.text = text.to_string();
    }

    fn corrupt(&self, reason: String) -> Panic {
        Panic::new(
            codes::EIKCOCTL_70,
            self.app.clone(),
            format!("corrupt edwin state for inline editing: {reason}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listbox_happy_path() {
        let mut lb = ListBox::new("Contacts");
        lb.set_items(vec!["a".into(), "b".into(), "c".into()]);
        lb.attach_view();
        lb.set_current_item_index(2).unwrap();
        assert_eq!(lb.draw().unwrap(), "c");
        assert_eq!(lb.len(), 3);
        assert!(!lb.is_empty());
    }

    #[test]
    fn listbox_without_view_is_eikon_3() {
        let mut lb = ListBox::new("Contacts");
        lb.set_items(vec!["a".into()]);
        let p = lb.draw().unwrap_err();
        assert_eq!(p.code, codes::EIKON_LISTBOX_3);
        lb.attach_view();
        assert!(lb.draw().is_ok());
        lb.detach_view();
        assert!(lb.draw().is_err());
    }

    #[test]
    fn listbox_invalid_index_is_eikon_5() {
        let mut lb = ListBox::new("Log");
        lb.set_items(vec!["a".into()]);
        let p = lb.set_current_item_index(1).unwrap_err();
        assert_eq!(p.code, codes::EIKON_LISTBOX_5);
        assert_eq!(p.raised_by, "Log");
    }

    #[test]
    fn listbox_index_invalidated_by_shrinking_items() {
        let mut lb = ListBox::new("Log");
        lb.set_items(vec!["a".into(), "b".into()]);
        lb.attach_view();
        lb.set_current_item_index(1).unwrap();
        // Items replaced: current resets, stays valid.
        lb.set_items(vec!["only".into()]);
        assert_eq!(lb.draw().unwrap(), "only");
        // Empty items: even index 0 is invalid.
        lb.set_items(Vec::new());
        let p = lb.draw().unwrap_err();
        assert_eq!(p.code, codes::EIKON_LISTBOX_5);
    }

    #[test]
    fn edwin_inline_edit_round_trip() {
        let mut e = Edwin::new("Messages");
        e.set_text("hello wrld");
        e.begin_inline_edit(6, 10).unwrap();
        e.commit_inline_edit("world").unwrap();
        assert_eq!(e.text(), "hello world");
    }

    #[test]
    fn edwin_bad_span_is_eikcoctl_70() {
        let mut e = Edwin::new("Messages");
        e.set_text("ab");
        assert_eq!(
            e.begin_inline_edit(1, 0).unwrap_err().code,
            codes::EIKCOCTL_70
        );
        assert_eq!(
            e.begin_inline_edit(0, 3).unwrap_err().code,
            codes::EIKCOCTL_70
        );
    }

    #[test]
    fn edwin_commit_without_begin_is_eikcoctl_70() {
        let mut e = Edwin::new("Messages");
        let p = e.commit_inline_edit("x").unwrap_err();
        assert_eq!(p.code, codes::EIKCOCTL_70);
    }

    #[test]
    fn edwin_stale_span_after_set_text() {
        let mut e = Edwin::new("Messages");
        e.set_text("a long line of text");
        e.begin_inline_edit(10, 14).unwrap();
        e.set_text("oops"); // corrupts the pending edit
        let p = e.commit_inline_edit("x").unwrap_err();
        assert_eq!(p.code, codes::EIKCOCTL_70);
        assert!(p.reason.contains("stored inline span"));
    }
}
