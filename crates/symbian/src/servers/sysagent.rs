//! The System Agent Server — the source of battery status.
//!
//! The failure logger's Power Manager queries this server so that a
//! shutdown caused by a drained battery (a `LOWBT` heartbeat event)
//! can be told apart from a self-shutdown caused by a failure.

use serde::{Deserialize, Serialize};

/// Battery charging state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChargeState {
    /// Discharging on battery.
    OnBattery,
    /// Connected to a charger.
    Charging,
}

/// The System Agent Server's view of the power supply.
///
/// # Example
///
/// ```
/// use symfail_symbian::servers::sysagent::{ChargeState, SystemAgent};
///
/// let mut agent = SystemAgent::new(100);
/// agent.set_level(3);
/// assert!(agent.is_low());
/// agent.set_charge_state(ChargeState::Charging);
/// assert!(!agent.is_low(), "a charging battery is never low");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemAgent {
    level_percent: u8,
    state: ChargeState,
    low_threshold: u8,
}

impl SystemAgent {
    /// Default threshold below which the battery is reported low.
    pub const DEFAULT_LOW_THRESHOLD: u8 = 5;

    /// Creates an agent with the given initial battery level (0–100).
    pub fn new(level_percent: u8) -> Self {
        Self {
            level_percent: level_percent.min(100),
            state: ChargeState::OnBattery,
            low_threshold: Self::DEFAULT_LOW_THRESHOLD,
        }
    }

    /// Current battery level in percent.
    pub fn level(&self) -> u8 {
        self.level_percent
    }

    /// Sets the battery level (clamped to 100).
    pub fn set_level(&mut self, percent: u8) {
        self.level_percent = percent.min(100);
    }

    /// Current charge state.
    pub fn charge_state(&self) -> ChargeState {
        self.state
    }

    /// Sets the charge state.
    pub fn set_charge_state(&mut self, state: ChargeState) {
        self.state = state;
    }

    /// Sets the low-battery threshold.
    pub fn set_low_threshold(&mut self, percent: u8) {
        self.low_threshold = percent.min(100);
    }

    /// True when the phone is about to shut down for lack of power.
    pub fn is_low(&self) -> bool {
        self.state == ChargeState::OnBattery && self.level_percent <= self.low_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_clamped() {
        let mut a = SystemAgent::new(150);
        assert_eq!(a.level(), 100);
        a.set_level(200);
        assert_eq!(a.level(), 100);
    }

    #[test]
    fn low_battery_detection() {
        let mut a = SystemAgent::new(50);
        assert!(!a.is_low());
        a.set_level(5);
        assert!(a.is_low());
        a.set_level(6);
        assert!(!a.is_low());
        a.set_low_threshold(10);
        assert!(a.is_low());
    }

    #[test]
    fn charging_is_never_low() {
        let mut a = SystemAgent::new(0);
        assert!(a.is_low());
        a.set_charge_state(ChargeState::Charging);
        assert!(!a.is_low());
        assert_eq!(a.charge_state(), ChargeState::Charging);
    }
}
