//! Multimedia framework audio client — home of `MMFAudioClient 4`.
//!
//! The MMF audio client accepts volume settings in `0..=9`; passing 10
//! or more to `SetVolume(TInt)` raises the panic, exactly as Table 2
//! documents.

use serde::{Deserialize, Serialize};

use crate::panic::{codes, Panic};

/// The audio client of the multimedia framework.
///
/// # Example
///
/// ```
/// use symfail_symbian::servers::media::AudioClient;
/// use symfail_symbian::panic::codes;
///
/// let mut audio = AudioClient::new("MusicPlayer");
/// audio.set_volume(9)?;
/// let p = audio.set_volume(10).unwrap_err();
/// assert_eq!(p.code, codes::MMF_AUDIO_CLIENT_4);
/// # Ok::<(), symfail_symbian::Panic>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AudioClient {
    app: String,
    volume: i32,
    playing: bool,
}

impl AudioClient {
    /// Maximum legal volume value.
    pub const MAX_VOLUME: i32 = 9;

    /// Creates an audio client for the named application, at volume 5.
    pub fn new(app: &str) -> Self {
        Self {
            app: app.to_string(),
            volume: 5,
            playing: false,
        }
    }

    /// Current volume.
    pub fn volume(&self) -> i32 {
        self.volume
    }

    /// Sets the playback volume (`SetVolume(TInt)`).
    ///
    /// # Errors
    ///
    /// Raises `MMFAudioClient 4` when `volume >= 10`, and clamps
    /// negative values to zero (as the real client does).
    pub fn set_volume(&mut self, volume: i32) -> Result<(), Panic> {
        if volume > Self::MAX_VOLUME {
            return Err(Panic::new(
                codes::MMF_AUDIO_CLIENT_4,
                self.app.clone(),
                format!("SetVolume({volume}) with value 10 or more"),
            ));
        }
        self.volume = volume.max(0);
        Ok(())
    }

    /// Starts playback.
    pub fn play(&mut self) {
        self.playing = true;
    }

    /// Stops playback.
    pub fn stop(&mut self) {
        self.playing = false;
    }

    /// True while audio is playing.
    pub fn is_playing(&self) -> bool {
        self.playing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_boundaries() {
        let mut a = AudioClient::new("Ringtone");
        a.set_volume(0).unwrap();
        a.set_volume(9).unwrap();
        assert_eq!(a.volume(), 9);
        let p = a.set_volume(10).unwrap_err();
        assert_eq!(p.code, codes::MMF_AUDIO_CLIENT_4);
        assert_eq!(a.volume(), 9, "failed set leaves volume unchanged");
    }

    #[test]
    fn negative_volume_clamped() {
        let mut a = AudioClient::new("Ringtone");
        a.set_volume(-3).unwrap();
        assert_eq!(a.volume(), 0);
    }

    #[test]
    fn playback_state() {
        let mut a = AudioClient::new("Player");
        assert!(!a.is_playing());
        a.play();
        assert!(a.is_playing());
        a.stop();
        assert!(!a.is_playing());
    }
}
