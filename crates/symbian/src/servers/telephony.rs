//! The built-in Phone application — the telephony front end whose
//! (undocumented) internal failure is `Phone.app 2`.
//!
//! Phone.app is one of the two *core* applications (with the messaging
//! server): the paper found that when either panics, the kernel always
//! reboots the phone. The model drives a small call state machine;
//! a state-machine violation — answering with no call, ending a call
//! twice, a second outgoing call colliding with signalling — raises
//! the panic.

use serde::{Deserialize, Serialize};

use crate::panic::{codes, Panic};

/// The telephony call state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallState {
    /// No call in progress.
    Idle,
    /// Outgoing call being established.
    Dialing,
    /// Incoming call alerting.
    Ringing,
    /// Call connected.
    Connected,
}

/// The Phone application.
///
/// # Example
///
/// ```
/// use symfail_symbian::servers::telephony::{CallState, PhoneApp};
///
/// let mut phone = PhoneApp::new();
/// phone.dial()?;
/// phone.connect()?;
/// assert_eq!(phone.state(), CallState::Connected);
/// phone.hang_up()?;
/// # Ok::<(), symfail_symbian::Panic>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhoneApp {
    state: CallState,
    calls_completed: u64,
}

impl PhoneApp {
    /// Creates the application in the idle state.
    pub fn new() -> Self {
        Self {
            state: CallState::Idle,
            calls_completed: 0,
        }
    }

    /// Current call state.
    pub fn state(&self) -> CallState {
        self.state
    }

    /// Calls completed since start.
    pub fn calls_completed(&self) -> u64 {
        self.calls_completed
    }

    /// Starts an outgoing call.
    ///
    /// # Errors
    ///
    /// Raises `Phone.app 2` when a call is already in progress (the
    /// state machine was violated).
    pub fn dial(&mut self) -> Result<(), Panic> {
        match self.state {
            CallState::Idle => {
                self.state = CallState::Dialing;
                Ok(())
            }
            other => Err(self.internal_error(format!("dial in state {other:?}"))),
        }
    }

    /// Signals an incoming call.
    ///
    /// # Errors
    ///
    /// Raises `Phone.app 2` when the state machine cannot accept it
    /// (e.g. incoming signalling while dialing — the collision the
    /// fault injector uses).
    pub fn incoming(&mut self) -> Result<(), Panic> {
        match self.state {
            CallState::Idle => {
                self.state = CallState::Ringing;
                Ok(())
            }
            other => Err(self.internal_error(format!("incoming call in state {other:?}"))),
        }
    }

    /// Connects the in-progress call (dialing answered / ringing
    /// accepted).
    ///
    /// # Errors
    ///
    /// Raises `Phone.app 2` when no call is being established.
    pub fn connect(&mut self) -> Result<(), Panic> {
        match self.state {
            CallState::Dialing | CallState::Ringing => {
                self.state = CallState::Connected;
                Ok(())
            }
            other => Err(self.internal_error(format!("connect in state {other:?}"))),
        }
    }

    /// Ends the call.
    ///
    /// # Errors
    ///
    /// Raises `Phone.app 2` when no call exists.
    pub fn hang_up(&mut self) -> Result<(), Panic> {
        match self.state {
            CallState::Idle => Err(self.internal_error("hang up with no call".to_string())),
            CallState::Connected => {
                self.state = CallState::Idle;
                self.calls_completed += 1;
                Ok(())
            }
            _ => {
                self.state = CallState::Idle;
                Ok(())
            }
        }
    }

    fn internal_error(&self, reason: String) -> Panic {
        Panic::new(
            codes::PHONE_APP_2,
            "Phone.app",
            format!("telephony state machine violation: {reason}"),
        )
    }
}

impl Default for PhoneApp {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outgoing_call_lifecycle() {
        let mut p = PhoneApp::new();
        p.dial().unwrap();
        assert_eq!(p.state(), CallState::Dialing);
        p.connect().unwrap();
        p.hang_up().unwrap();
        assert_eq!(p.state(), CallState::Idle);
        assert_eq!(p.calls_completed(), 1);
    }

    #[test]
    fn incoming_call_lifecycle() {
        let mut p = PhoneApp::new();
        p.incoming().unwrap();
        assert_eq!(p.state(), CallState::Ringing);
        p.connect().unwrap();
        p.hang_up().unwrap();
        assert_eq!(p.calls_completed(), 1);
    }

    #[test]
    fn abandoning_before_connect_completes_nothing() {
        let mut p = PhoneApp::new();
        p.dial().unwrap();
        p.hang_up().unwrap();
        assert_eq!(p.calls_completed(), 0);
        assert_eq!(p.state(), CallState::Idle);
    }

    #[test]
    fn collisions_raise_phone_app_2() {
        let mut p = PhoneApp::new();
        p.dial().unwrap();
        assert_eq!(p.dial().unwrap_err().code, codes::PHONE_APP_2);
        assert_eq!(p.incoming().unwrap_err().code, codes::PHONE_APP_2);
        p.connect().unwrap();
        assert_eq!(p.connect().unwrap_err().code, codes::PHONE_APP_2);
    }

    #[test]
    fn hang_up_idle_raises() {
        let mut p = PhoneApp::new();
        let e = p.hang_up().unwrap_err();
        assert_eq!(e.code, codes::PHONE_APP_2);
        assert_eq!(e.raised_by, "Phone.app");
    }
}
