//! The Application Architecture Server.
//!
//! Tracks which applications are currently running; the failure
//! logger's Running Applications Detector polls this server and stores
//! the list in the `runapp` file, which is how the study could relate
//! panics to the set of applications alive at panic time (Table 4,
//! Figure 6).

use serde::{Deserialize, Serialize};

/// The Application Architecture Server: the registry of running
/// applications.
///
/// # Example
///
/// ```
/// use symfail_symbian::servers::applist::AppArchServer;
///
/// let mut apps = AppArchServer::new();
/// apps.notify_started("Messages");
/// apps.notify_started("Camera");
/// assert_eq!(apps.running(), vec!["Camera".to_string(), "Messages".to_string()]);
/// apps.notify_exited("Camera");
/// assert_eq!(apps.count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppArchServer {
    running: Vec<String>,
}

impl AppArchServer {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an application start. Starting an already-running
    /// application is a no-op (it comes to the foreground instead).
    pub fn notify_started(&mut self, app: &str) {
        if !self.running.iter().any(|a| a == app) {
            self.running.push(app.to_string());
            self.running.sort();
        }
    }

    /// Registers an application exit (normal quit or kernel
    /// termination after a panic). Returns true if the app was
    /// running.
    pub fn notify_exited(&mut self, app: &str) -> bool {
        let before = self.running.len();
        self.running.retain(|a| a != app);
        self.running.len() != before
    }

    /// True when the application is currently running.
    pub fn is_running(&self, app: &str) -> bool {
        self.running.iter().any(|a| a == app)
    }

    /// Sorted snapshot of the running applications.
    pub fn running(&self) -> Vec<String> {
        self.running.clone()
    }

    /// Number of running applications.
    pub fn count(&self) -> usize {
        self.running.len()
    }

    /// Clears the registry (device reboot).
    pub fn reset(&mut self) {
        self.running.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_exit_lifecycle() {
        let mut s = AppArchServer::new();
        s.notify_started("Clock");
        s.notify_started("Messages");
        s.notify_started("Clock"); // duplicate start ignored
        assert_eq!(s.count(), 2);
        assert!(s.is_running("Clock"));
        assert!(s.notify_exited("Clock"));
        assert!(!s.notify_exited("Clock"));
        assert!(!s.is_running("Clock"));
    }

    #[test]
    fn snapshot_is_sorted() {
        let mut s = AppArchServer::new();
        for app in ["TomTom", "Camera", "Messages"] {
            s.notify_started(app);
        }
        assert_eq!(
            s.running(),
            vec![
                "Camera".to_string(),
                "Messages".to_string(),
                "TomTom".to_string()
            ]
        );
    }

    #[test]
    fn reset_clears() {
        let mut s = AppArchServer::new();
        s.notify_started("x");
        s.reset();
        assert_eq!(s.count(), 0);
    }
}
