//! System servers and framework components.
//!
//! In the micro-kernel design of Section 2 all system services are
//! provided by server applications. This module models the servers the
//! failure study touches:
//!
//! * [`applist`] — the Application Architecture Server, source of the
//!   running-applications list the logger snapshots;
//! * [`flogger`] — the built-in file logger server, whose
//!   undocumented-directory design motivated the paper's own logger;
//! * [`logdb`] — the Database Log Server, recording phone activity
//!   (voice calls, messages) the logger correlates panics with;
//! * [`sysagent`] — the System Agent Server, source of battery status;
//! * [`ui`] — the EIKON UI framework pieces (listbox, edwin) with
//!   their application-level panics;
//! * [`media`] — the multimedia framework audio client;
//! * [`telephony`] — the built-in Phone application.

pub mod applist;
pub mod flogger;
pub mod logdb;
pub mod media;
pub mod sysagent;
pub mod telephony;
pub mod ui;
