//! Symbian "leave" codes — the recoverable-error side of the OS.
//!
//! A *leave* is Symbian's exception mechanism: a function that cannot
//! complete "leaves" with a negative error code, unwinding to the
//! nearest trap harness, which frees everything registered on the
//! cleanup stack in the meantime. A leave is recoverable; a leave with
//! **no trap handler installed** is not, and escalates to the
//! `E32USER-CBase 69` panic (see [`crate::cleanup`]).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The standard system-wide error codes used by leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LeaveCode {
    /// `KErrNotFound` (-1): the requested item could not be found.
    NotFound,
    /// `KErrGeneral` (-2): an unspecified error.
    General,
    /// `KErrCancel` (-3): the operation was cancelled.
    Cancel,
    /// `KErrNoMemory` (-4): heap allocation failed.
    NoMemory,
    /// `KErrNotSupported` (-5): the operation is not supported.
    NotSupported,
    /// `KErrArgument` (-6): an argument was out of range.
    Argument,
    /// `KErrOverflow` (-9): a value was too large.
    Overflow,
    /// `KErrBadHandle` (-8): a handle was invalid.
    BadHandle,
    /// `KErrInUse` (-14): the resource is already in use.
    InUse,
    /// `KErrServerBusy` (-16): the server has too many outstanding requests.
    ServerBusy,
    /// `KErrCommsLineFail` (-29): the communication line failed.
    CommsLineFail,
    /// `KErrTimedOut` (-33): the operation timed out.
    TimedOut,
    /// `KErrDisconnected` (-36): the endpoint disconnected.
    Disconnected,
    /// `KErrCorrupt` (-20): stored data is corrupt.
    Corrupt,
}

impl LeaveCode {
    /// The numeric value of the code, matching the Symbian constants.
    pub const fn as_i32(self) -> i32 {
        match self {
            LeaveCode::NotFound => -1,
            LeaveCode::General => -2,
            LeaveCode::Cancel => -3,
            LeaveCode::NoMemory => -4,
            LeaveCode::NotSupported => -5,
            LeaveCode::Argument => -6,
            LeaveCode::BadHandle => -8,
            LeaveCode::Overflow => -9,
            LeaveCode::InUse => -14,
            LeaveCode::ServerBusy => -16,
            LeaveCode::Corrupt => -20,
            LeaveCode::CommsLineFail => -29,
            LeaveCode::TimedOut => -33,
            LeaveCode::Disconnected => -36,
        }
    }

    /// The Symbian constant name, e.g. `KErrNoMemory`.
    pub const fn name(self) -> &'static str {
        match self {
            LeaveCode::NotFound => "KErrNotFound",
            LeaveCode::General => "KErrGeneral",
            LeaveCode::Cancel => "KErrCancel",
            LeaveCode::NoMemory => "KErrNoMemory",
            LeaveCode::NotSupported => "KErrNotSupported",
            LeaveCode::Argument => "KErrArgument",
            LeaveCode::BadHandle => "KErrBadHandle",
            LeaveCode::Overflow => "KErrOverflow",
            LeaveCode::InUse => "KErrInUse",
            LeaveCode::ServerBusy => "KErrServerBusy",
            LeaveCode::Corrupt => "KErrCorrupt",
            LeaveCode::CommsLineFail => "KErrCommsLineFail",
            LeaveCode::TimedOut => "KErrTimedOut",
            LeaveCode::Disconnected => "KErrDisconnected",
        }
    }
}

impl fmt::Display for LeaveCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.as_i32())
    }
}

impl std::error::Error for LeaveCode {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_negative_and_distinct() {
        let all = [
            LeaveCode::NotFound,
            LeaveCode::General,
            LeaveCode::Cancel,
            LeaveCode::NoMemory,
            LeaveCode::NotSupported,
            LeaveCode::Argument,
            LeaveCode::BadHandle,
            LeaveCode::Overflow,
            LeaveCode::InUse,
            LeaveCode::ServerBusy,
            LeaveCode::Corrupt,
            LeaveCode::CommsLineFail,
            LeaveCode::TimedOut,
            LeaveCode::Disconnected,
        ];
        let mut values: Vec<i32> = all.iter().map(|c| c.as_i32()).collect();
        assert!(values.iter().all(|&v| v < 0));
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), all.len());
    }

    #[test]
    fn well_known_values() {
        assert_eq!(LeaveCode::NotFound.as_i32(), -1);
        assert_eq!(LeaveCode::NoMemory.as_i32(), -4);
        assert_eq!(LeaveCode::NoMemory.to_string(), "KErrNoMemory (-4)");
    }
}
