//! Kernel executive memory-access model — the home of `KERN-EXEC 3`,
//! the panic behind **56.31%** of all panics in the study.
//!
//! A process owns a set of mapped address ranges; dereferencing an
//! address outside them (most commonly NULL) is an unhandled exception
//! that the kernel executive turns into a `KERN-EXEC 3` panic against
//! the offending application. The model also covers the other
//! documented causes: general protection faults (writing a read-only
//! range), invalid instructions and alignment checks.

use serde::{Deserialize, Serialize};

use crate::panic::{codes, Panic};

/// A virtual address in the simulated process.
pub type Address = u64;

/// Access intent for a memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Access {
    /// Reading from the address.
    Read,
    /// Writing to the address.
    Write,
    /// Fetching an instruction from the address.
    Execute,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Mapping {
    start: Address,
    len: u64,
    writable: bool,
    executable: bool,
}

/// The memory map of one process, with the access checks the kernel
/// executive performs.
///
/// # Example
///
/// ```
/// use symfail_symbian::exec::{Access, MemoryMap};
/// use symfail_symbian::panic::codes;
///
/// let mut map = MemoryMap::new("Camera");
/// map.map_region(0x1000, 0x1000, true, false);
/// assert!(map.check(0x1800, Access::Read).is_ok());
/// let p = map.check(0, Access::Read).unwrap_err(); // NULL deref
/// assert_eq!(p.code, codes::KERN_EXEC_3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryMap {
    process: String,
    mappings: Vec<Mapping>,
}

impl MemoryMap {
    /// Creates an empty map for the named process. Address 0 is never
    /// mapped: NULL dereferences always fault, as on real hardware.
    pub fn new(process: &str) -> Self {
        Self {
            process: process.to_string(),
            mappings: Vec::new(),
        }
    }

    /// Maps `[start, start+len)` with the given permissions. The page
    /// containing address 0 is silently excluded.
    pub fn map_region(&mut self, start: Address, len: u64, writable: bool, executable: bool) {
        let (start, len) = if start == 0 {
            // keep NULL unmapped: skip the first 4 KiB "page"
            let skip = 4096.min(len);
            (skip, len - skip)
        } else {
            (start, len)
        };
        if len > 0 {
            self.mappings.push(Mapping {
                start,
                len,
                writable,
                executable,
            });
        }
    }

    /// The process this map belongs to.
    pub fn process(&self) -> &str {
        &self.process
    }

    /// Performs the kernel executive access check for `addr`.
    ///
    /// # Errors
    ///
    /// Raises `KERN-EXEC 3` with a cause-specific reason:
    /// * "dereferenced NULL" for addresses in the first page,
    /// * "access violation" for unmapped addresses,
    /// * "general protection fault" for writes to read-only ranges,
    /// * "executing an invalid instruction" for execute on
    ///   non-executable ranges.
    pub fn check(&self, addr: Address, access: Access) -> Result<(), Panic> {
        if addr < 4096 {
            return Err(self.kern_exec_3(format!(
                "unhandled exception: dereferenced NULL (address {addr:#x})"
            )));
        }
        match self
            .mappings
            .iter()
            .find(|m| addr >= m.start && addr < m.start + m.len)
        {
            None => Err(self.kern_exec_3(format!(
                "unhandled exception: access violation at unmapped address {addr:#x}"
            ))),
            Some(m) => match access {
                Access::Read => Ok(()),
                Access::Write if m.writable => Ok(()),
                Access::Write => Err(self.kern_exec_3(format!(
                    "unhandled exception: general protection fault writing {addr:#x}"
                ))),
                Access::Execute if m.executable => Ok(()),
                Access::Execute => Err(self.kern_exec_3(format!(
                    "unhandled exception: executing an invalid instruction at {addr:#x}"
                ))),
            },
        }
    }

    /// Performs an aligned access check: `addr` must be a multiple of
    /// `align` in addition to being mapped.
    ///
    /// # Errors
    ///
    /// Raises `KERN-EXEC 3` ("alignment check") for misaligned
    /// addresses, and the [`Self::check`] errors otherwise.
    pub fn check_aligned(&self, addr: Address, access: Access, align: u64) -> Result<(), Panic> {
        if align > 1 && !addr.is_multiple_of(align) {
            return Err(self.kern_exec_3(format!(
                "unhandled exception: alignment check failed at {addr:#x} (align {align})"
            )));
        }
        self.check(addr, access)
    }

    fn kern_exec_3(&self, reason: String) -> Panic {
        Panic::new(codes::KERN_EXEC_3, self.process.clone(), reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> MemoryMap {
        let mut m = MemoryMap::new("app");
        m.map_region(0x1_0000, 0x1000, true, false); // rw data
        m.map_region(0x2_0000, 0x1000, false, true); // rx code
        m.map_region(0x3_0000, 0x1000, false, false); // ro data
        m
    }

    #[test]
    fn null_deref_is_kern_exec_3() {
        let m = map();
        for addr in [0u64, 1, 4095] {
            let p = m.check(addr, Access::Read).unwrap_err();
            assert_eq!(p.code, codes::KERN_EXEC_3);
            assert!(p.reason.contains("NULL"), "{}", p.reason);
        }
    }

    #[test]
    fn unmapped_access_violation() {
        let p = map().check(0x9_0000, Access::Read).unwrap_err();
        assert_eq!(p.code, codes::KERN_EXEC_3);
        assert!(p.reason.contains("access violation"));
    }

    #[test]
    fn mapped_access_ok() {
        let m = map();
        assert!(m.check(0x1_0000, Access::Read).is_ok());
        assert!(m.check(0x1_0FFF, Access::Write).is_ok());
        assert!(m.check(0x2_0000, Access::Execute).is_ok());
        assert!(m.check(0x3_0000, Access::Read).is_ok());
    }

    #[test]
    fn boundary_is_exclusive() {
        let m = map();
        assert!(m.check(0x1_1000, Access::Read).is_err());
    }

    #[test]
    fn write_to_readonly_is_gpf() {
        let p = map().check(0x3_0000, Access::Write).unwrap_err();
        assert!(p.reason.contains("general protection fault"));
    }

    #[test]
    fn execute_data_is_invalid_instruction() {
        let p = map().check(0x1_0000, Access::Execute).unwrap_err();
        assert!(p.reason.contains("invalid instruction"));
    }

    #[test]
    fn alignment_check() {
        let m = map();
        assert!(m.check_aligned(0x1_0004, Access::Read, 4).is_ok());
        let p = m.check_aligned(0x1_0002, Access::Read, 4).unwrap_err();
        assert!(p.reason.contains("alignment"));
        // align 1 never faults on alignment
        assert!(m.check_aligned(0x1_0003, Access::Read, 1).is_ok());
    }

    #[test]
    fn mapping_at_zero_excludes_null_page() {
        let mut m = MemoryMap::new("app");
        m.map_region(0, 8192, true, false);
        assert!(m.check(0, Access::Read).is_err());
        assert!(m.check(4096, Access::Read).is_ok());
        // Tiny zero-start mapping disappears entirely.
        let mut t = MemoryMap::new("app");
        t.map_region(0, 100, true, false);
        assert!(t.check(50, Access::Read).is_err());
    }
}
