//! Kernel object index, handles and `CObject` reference counting.
//!
//! Clients refer to kernel objects (threads, servers, sessions,
//! timers…) by raw handle numbers resolved through a per-process
//! object index. Three of the paper's panic codes live here:
//!
//! * `KERN-EXEC 0` — the Kernel *Executive* cannot find an object for
//!   a raw handle number (a stale or garbage handle used in a syscall);
//! * `KERN-SVR 0` — the Kernel *Server* cannot find the object while
//!   servicing `RHandleBase::Close()` (a corrupt handle);
//! * `E32USER-CBase 33` — a `CObject` destructor ran while the
//!   reference count was still non-zero.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::panic::{codes, Panic};

/// A raw handle number, as stored in client code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Handle(u32);

impl Handle {
    /// The raw handle number.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Constructs a handle from a raw number — the fault-injection
    /// entry point for "corrupt handle" scenarios.
    pub fn from_raw(raw: u32) -> Self {
        Handle(raw)
    }
}

/// The kind of kernel object a handle refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// A thread.
    Thread,
    /// A server port.
    Server,
    /// A client/server session.
    Session,
    /// An asynchronous timer.
    Timer,
    /// A mutex.
    Mutex,
    /// A shared memory chunk.
    Chunk,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct KernelObject {
    kind: ObjectKind,
    owner: String,
    refcount: u32,
}

/// The per-process object index.
///
/// # Example
///
/// ```
/// use symfail_symbian::object_index::{ObjectIndex, ObjectKind};
///
/// let mut index = ObjectIndex::new();
/// let h = index.open("Messages", ObjectKind::Session);
/// assert_eq!(index.kind_of(h)?, ObjectKind::Session);
/// index.close(h)?;
/// # Ok::<(), symfail_symbian::Panic>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObjectIndex {
    objects: BTreeMap<u32, KernelObject>,
    next_handle: u32,
}

impl ObjectIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a kernel object owned by `owner` and returns its
    /// handle. The new object has reference count 1.
    pub fn open(&mut self, owner: &str, kind: ObjectKind) -> Handle {
        let h = self.next_handle;
        self.next_handle += 1;
        self.objects.insert(
            h,
            KernelObject {
                kind,
                owner: owner.to_string(),
                refcount: 1,
            },
        );
        Handle(h)
    }

    /// Duplicates a handle, incrementing the reference count
    /// (`RHandleBase::Duplicate`).
    ///
    /// # Errors
    ///
    /// Raises `KERN-EXEC 0` for an unknown handle.
    pub fn duplicate(&mut self, handle: Handle) -> Result<Handle, Panic> {
        match self.objects.get_mut(&handle.0) {
            Some(obj) => {
                obj.refcount += 1;
                Ok(handle)
            }
            None => Err(self.exec_lookup_failure(handle)),
        }
    }

    /// Resolves a handle on the Kernel Executive path (a syscall using
    /// the object).
    ///
    /// # Errors
    ///
    /// Raises `KERN-EXEC 0` when the handle does not resolve.
    pub fn kind_of(&self, handle: Handle) -> Result<ObjectKind, Panic> {
        self.objects
            .get(&handle.0)
            .map(|o| o.kind)
            .ok_or_else(|| self.exec_lookup_failure(handle))
    }

    /// Current reference count of the object behind `handle`.
    ///
    /// # Errors
    ///
    /// Raises `KERN-EXEC 0` when the handle does not resolve.
    pub fn refcount(&self, handle: Handle) -> Result<u32, Panic> {
        self.objects
            .get(&handle.0)
            .map(|o| o.refcount)
            .ok_or_else(|| self.exec_lookup_failure(handle))
    }

    /// Closes a handle on the Kernel Server path
    /// (`RHandleBase::Close()`), decrementing the reference count and
    /// destroying the object when it reaches zero.
    ///
    /// # Errors
    ///
    /// Raises `KERN-SVR 0` when the object cannot be found — the
    /// corrupt-handle scenario of Table 2.
    pub fn close(&mut self, handle: Handle) -> Result<(), Panic> {
        match self.objects.get_mut(&handle.0) {
            Some(obj) => {
                obj.refcount -= 1;
                if obj.refcount == 0 {
                    self.objects.remove(&handle.0);
                }
                Ok(())
            }
            None => Err(Panic::new(
                codes::KERN_SVR_0,
                "KernelServer",
                format!("close could not find object for handle {}", handle.0),
            )),
        }
    }

    /// Destroys a `CObject` outright (its destructor ran). Legal only
    /// when the reference count is exactly 1 — destroying a shared
    /// object raises `E32USER-CBase 33`.
    ///
    /// # Errors
    ///
    /// Raises `E32USER-CBase 33` when the reference count is not 1
    /// (destroying while shared), or `KERN-EXEC 0` for an unknown
    /// handle.
    pub fn destroy_cobject(&mut self, handle: Handle) -> Result<(), Panic> {
        match self.objects.get(&handle.0) {
            Some(obj) if obj.refcount > 1 => Err(Panic::new(
                codes::E32USER_CBASE_33,
                obj.owner.clone(),
                format!(
                    "CObject destructor with reference count {} (handle {})",
                    obj.refcount, handle.0
                ),
            )),
            Some(_) => {
                self.objects.remove(&handle.0);
                Ok(())
            }
            None => Err(self.exec_lookup_failure(handle)),
        }
    }

    /// Number of live kernel objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects are live.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Handles of all objects owned by `owner`.
    pub fn handles_owned_by(&self, owner: &str) -> Vec<Handle> {
        self.objects
            .iter()
            .filter(|(_, o)| o.owner == owner)
            .map(|(&h, _)| Handle(h))
            .collect()
    }

    /// Force-closes everything owned by `owner` (kernel cleanup when
    /// an application is terminated). Returns the number of objects
    /// destroyed.
    pub fn reclaim_owner(&mut self, owner: &str) -> usize {
        let handles = self.handles_owned_by(owner);
        for h in &handles {
            self.objects.remove(&h.0);
        }
        handles.len()
    }

    fn exec_lookup_failure(&self, handle: Handle) -> Panic {
        Panic::new(
            codes::KERN_EXEC_0,
            "KernelExecutive",
            format!("no object in index for raw handle {}", handle.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_lookup_close() {
        let mut idx = ObjectIndex::new();
        let h = idx.open("app", ObjectKind::Timer);
        assert_eq!(idx.kind_of(h).unwrap(), ObjectKind::Timer);
        assert_eq!(idx.refcount(h).unwrap(), 1);
        idx.close(h).unwrap();
        assert!(idx.is_empty());
    }

    #[test]
    fn unknown_handle_is_kern_exec_0() {
        let idx = ObjectIndex::new();
        let p = idx.kind_of(Handle::from_raw(42)).unwrap_err();
        assert_eq!(p.code, codes::KERN_EXEC_0);
    }

    #[test]
    fn close_of_corrupt_handle_is_kern_svr_0() {
        let mut idx = ObjectIndex::new();
        let p = idx.close(Handle::from_raw(1234)).unwrap_err();
        assert_eq!(p.code, codes::KERN_SVR_0);
        assert_eq!(p.raised_by, "KernelServer");
    }

    #[test]
    fn duplicate_increments_and_close_decrements() {
        let mut idx = ObjectIndex::new();
        let h = idx.open("app", ObjectKind::Session);
        idx.duplicate(h).unwrap();
        assert_eq!(idx.refcount(h).unwrap(), 2);
        idx.close(h).unwrap();
        assert_eq!(idx.refcount(h).unwrap(), 1);
        idx.close(h).unwrap();
        assert!(idx.is_empty());
        assert!(idx.duplicate(h).is_err());
    }

    #[test]
    fn destroy_shared_cobject_is_cbase_33() {
        let mut idx = ObjectIndex::new();
        let h = idx.open("Log", ObjectKind::Session);
        idx.duplicate(h).unwrap();
        let p = idx.destroy_cobject(h).unwrap_err();
        assert_eq!(p.code, codes::E32USER_CBASE_33);
        assert_eq!(p.raised_by, "Log");
        // The object survives the failed destruction attempt.
        assert_eq!(idx.refcount(h).unwrap(), 2);
    }

    #[test]
    fn destroy_unshared_cobject_ok() {
        let mut idx = ObjectIndex::new();
        let h = idx.open("app", ObjectKind::Mutex);
        idx.destroy_cobject(h).unwrap();
        assert!(idx.is_empty());
        assert_eq!(idx.destroy_cobject(h).unwrap_err().code, codes::KERN_EXEC_0);
    }

    #[test]
    fn reclaim_owner() {
        let mut idx = ObjectIndex::new();
        idx.open("Messages", ObjectKind::Session);
        idx.open("Messages", ObjectKind::Timer);
        let keep = idx.open("Camera", ObjectKind::Chunk);
        assert_eq!(idx.reclaim_owner("Messages"), 2);
        assert_eq!(idx.len(), 1);
        assert!(idx.kind_of(keep).is_ok());
        assert_eq!(idx.reclaim_owner("Messages"), 0);
    }
}
