//! Offline mini property-testing shim.
//!
//! CI has no registry access, so this crate reimplements exactly the
//! subset of the `proptest` API the workspace's tests use: the
//! `proptest!` macro, `prop_assert*`/`prop_assume`, `prop_oneof!`,
//! `Just`, `.prop_map`, integer/float range strategies, char ranges,
//! `prop::collection::vec`, and `&str` strategies of the form
//! `"[class]{m,n}"`. Generation is deterministic (seeded per test
//! name and case index) and there is no shrinking: on failure the
//! generated inputs are printed verbatim instead.

pub mod strategy;

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Inclusive size bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod char {
    use crate::strategy::Strategy;
    use crate::TestRng;

    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Uniform char in `[lo, hi]` (inclusive), skipping surrogates.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "char::range requires lo <= hi");
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = char;

        fn generate(&self, rng: &mut TestRng) -> char {
            loop {
                let c = self.lo + rng.below((self.hi - self.lo + 1) as u64) as u32;
                if let Some(c) = char::from_u32(c) {
                    return c;
                }
            }
        }
    }
}

/// Namespace alias so `prop::collection::vec(..)` etc. work after
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::char;
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Why a test case ended without passing.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Deterministic splitmix64 stream used to drive generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive. The modulo
    /// bias is irrelevant at test-generation scale.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test name: a stable per-test seed basis.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Prints the generated inputs if the test case panics, so failures
/// are reproducible without shrinking support.
pub struct CaseGuard(Option<String>);

impl CaseGuard {
    pub fn new(desc: String) -> Self {
        CaseGuard(Some(desc))
    }

    pub fn disarm(&mut self) {
        self.0 = None;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Some(d) = &self.0 {
                eprintln!("proptest case failed with inputs: {d}");
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($s) ),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let __base: u64 = $crate::fnv(stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::from_seed(
                        __base ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let mut __desc = String::new();
                    $(
                        __desc.push_str(concat!(stringify!($arg), " = "));
                        __desc.push_str(&format!("{:?}; ", &$arg));
                    )+
                    let mut __guard = $crate::CaseGuard::new(__desc);
                    let __res: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    __guard.disarm();
                    match __res {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => {}
                    }
                }
            }
        )*
    };
}
