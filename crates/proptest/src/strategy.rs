//! Value-generation strategies: the `Strategy` trait plus the
//! combinators and primitive strategies the workspace's tests use.

use crate::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy that maps generated values through a function.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy, the currency of `prop_oneof!`.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Uniform choice between alternative strategies (unweighted).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String strategy from a restricted regex: exactly the form
/// `[class]{m}` or `[class]{m,n}`, where `class` lists literal chars
/// and `a-z`-style ranges (a trailing `-` is literal).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let inner = pat
        .strip_prefix('[')
        .and_then(|r| r.split_once(']'))
        .unwrap_or_else(|| {
            panic!("unsupported string strategy pattern {pat:?} (expected [class]{{m,n}})")
        });
    let (class, rest) = inner;
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            assert!(lo <= hi, "descending class range in {pat:?}");
            alphabet.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty char class in {pat:?}");
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in {pat:?}"));
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
        None => {
            let n = counts.trim().parse().unwrap();
            (n, n)
        }
    };
    assert!(min <= max, "descending repetition in {pat:?}");
    (alphabet, min, max)
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}
