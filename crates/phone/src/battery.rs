//! A coarse battery model.
//!
//! The logger only needs the battery *level* at sampling instants and
//! the low-battery flag, so the model is intentionally simple: linear
//! discharge over the waking day with activity-dependent extra drain,
//! and a full overnight recharge. Days on which the user forgets to
//! charge produce the `LOWBT` shutdowns the Power Manager exists to
//! classify.

use serde::{Deserialize, Serialize};

use symfail_sim_core::SimDuration;

/// The battery state of one phone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    level: f64,
    /// Percent drained per powered hour at idle.
    idle_drain_per_hour: f64,
    /// Extra percent drained per hour of calls/sessions.
    active_drain_per_hour: f64,
}

impl Battery {
    /// A fresh, fully charged battery with typical 2005-era drain
    /// rates (~2 days idle life).
    pub fn new() -> Self {
        Self {
            level: 100.0,
            idle_drain_per_hour: 2.2,
            active_drain_per_hour: 9.0,
        }
    }

    /// Current level in whole percent.
    pub fn percent(&self) -> u8 {
        self.level.clamp(0.0, 100.0).round() as u8
    }

    /// True when at or below the 5% low-battery threshold.
    pub fn is_low(&self) -> bool {
        self.level <= 5.0
    }

    /// Drains for `elapsed` of idle operation plus `active` of
    /// activity (calls, camera, sessions).
    pub fn drain(&mut self, elapsed: SimDuration, active: SimDuration) {
        let idle_h = elapsed.as_hours_f64();
        let act_h = active.as_hours_f64().min(idle_h);
        self.level -= idle_h * self.idle_drain_per_hour + act_h * self.active_drain_per_hour;
        self.level = self.level.max(0.0);
    }

    /// Overnight charge to full.
    pub fn recharge_full(&mut self) {
        self.level = 100.0;
    }

    /// Partial recharge (forgot the charger; plugged briefly).
    pub fn recharge_to(&mut self, percent: f64) {
        self.level = self.level.max(percent.clamp(0.0, 100.0));
    }
}

impl Default for Battery {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_battery_full() {
        let b = Battery::new();
        assert_eq!(b.percent(), 100);
        assert!(!b.is_low());
    }

    #[test]
    fn drains_with_time_and_activity() {
        let mut b = Battery::new();
        b.drain(SimDuration::from_hours(10), SimDuration::ZERO);
        let idle_only = b.percent();
        assert!(idle_only < 100);
        let mut c = Battery::new();
        c.drain(SimDuration::from_hours(10), SimDuration::from_hours(2));
        assert!(c.percent() < idle_only, "activity drains more");
    }

    #[test]
    fn never_negative_and_low_flag() {
        let mut b = Battery::new();
        b.drain(SimDuration::from_hours(1000), SimDuration::from_hours(1000));
        assert_eq!(b.percent(), 0);
        assert!(b.is_low());
    }

    #[test]
    fn recharge() {
        let mut b = Battery::new();
        b.drain(SimDuration::from_hours(30), SimDuration::ZERO);
        b.recharge_to(50.0);
        assert_eq!(b.percent(), 50);
        b.recharge_to(20.0);
        assert_eq!(b.percent(), 50, "recharge_to never discharges");
        b.recharge_full();
        assert_eq!(b.percent(), 100);
    }

    #[test]
    fn active_time_clamped_to_elapsed() {
        let mut a = Battery::new();
        a.drain(SimDuration::from_hours(1), SimDuration::from_hours(50));
        let mut b = Battery::new();
        b.drain(SimDuration::from_hours(1), SimDuration::from_hours(1));
        assert_eq!(a.percent(), b.percent());
    }
}
