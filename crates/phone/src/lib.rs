//! # symfail-phone
//!
//! The smart-phone device and fleet simulator: the substrate standing
//! in for the paper's 25 instrumented Symbian handsets.
//!
//! A [`device::Phone`] combines the `symfail-symbian` OS substrate
//! (system servers, panic mechanisms), a battery model, a user
//! behaviour model and a software fault injector. The failure data
//! logger from `symfail-core` runs *inside* the simulated phone and
//! only ever observes what a real logger could: heartbeats it wrote,
//! panic notifications, server queries.
//!
//! The causal chain for every panic is mechanistic: the fault injector
//! ([`faults`]) picks a fault *class*, executes the corresponding
//! failing operation against the OS substrate (a null dereference, a
//! descriptor overflow, a stray signal…), and the substrate raises the
//! panic code of the paper's Table 2. The kernel recovery policy then
//! terminates the application, propagates the error (panic cascades),
//! freezes the device or reboots it.
//!
//! [`fleet::FleetCampaign`] runs the 25-phone / 14-month campaign with
//! staggered enrollment and per-user behaviour profiles; its output is
//! one harvested flash filesystem per phone, ready for
//! `symfail_core::analysis`.
//!
//! # Example
//!
//! ```
//! use symfail_phone::calibration::CalibrationParams;
//! use symfail_phone::fleet::FleetCampaign;
//!
//! // A small campaign: 3 phones, 30 days.
//! let mut params = CalibrationParams::default();
//! params.phones = 3;
//! params.campaign_days = 30;
//! params.enrollment_spread_days = 5;
//! let campaign = FleetCampaign::new(42, params);
//! let harvest = campaign.run();
//! assert_eq!(harvest.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod battery;
pub mod calibration;
pub mod composition;
pub mod corruption;
pub mod device;
pub mod faults;
pub mod firmware;
pub mod fleet;
pub mod plan;
pub mod recovery;
pub mod repro;
pub mod user;
