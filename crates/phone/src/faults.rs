//! Software fault injection: from fault class to raised panic.
//!
//! An *episode* is one activation of a residual software fault. The
//! planner ([`plan_episode`]) decides — from the calibrated
//! probabilities — which panic code the activation manifests as,
//! whether the error propagates into a cascade of follow-up panics,
//! and whether it escalates into a high-level failure (freeze or
//! self-shutdown).
//!
//! The executor ([`execute_fault`]) then *mechanically produces* the
//! panic by driving the corresponding `symfail-symbian` mechanism
//! through a short, realistic sequence of operations whose last step
//! is the injected bug: dereferencing a null pointer, appending past a
//! descriptor's maximum length, signalling an idle active object, and
//! so on. The returned [`Panic`] therefore carries the exact code,
//! category and reason the OS documentation assigns to that bug class.

use serde::{Deserialize, Serialize};

use symfail_sim_core::{SimDuration, SimRng, SimTime};
use symfail_symbian::active::{ActiveScheduler, RunOutcome};
use symfail_symbian::cleanup::CleanupStack;
use symfail_symbian::descriptor::TBuf;
use symfail_symbian::exec::{Access, MemoryMap};
use symfail_symbian::heap::Heap;
use symfail_symbian::ipc::{RMessagePtr, ServerPort};
use symfail_symbian::leave::LeaveCode;
use symfail_symbian::object_index::{Handle, ObjectIndex, ObjectKind};
use symfail_symbian::panic::codes;
use symfail_symbian::servers::media::AudioClient;
use symfail_symbian::servers::telephony::PhoneApp;
use symfail_symbian::servers::ui::{Edwin, ListBox};
use symfail_symbian::timer::RTimer;
use symfail_symbian::{Panic, PanicCode};

use crate::calibration::{CalibrationParams, EpisodeContext, CASCADE_COMPANION_WEIGHTS};
use crate::recovery::{kernel_decision, KernelDecision};

/// How an episode escalates beyond application termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Escalation {
    /// The device locks up; recovery requires a battery pull.
    Freeze,
    /// The kernel reboots the device.
    SelfShutdown,
}

/// A planned fault episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEpisode {
    /// The activity context the episode is attached to.
    pub context: EpisodeContext,
    /// The primary panic code.
    pub primary: PanicCode,
    /// Follow-up panic codes of the cascade (empty for an isolated
    /// panic).
    pub cascade: Vec<PanicCode>,
    /// High-level consequence, if the error escapes the offending
    /// application.
    pub escalation: Option<Escalation>,
}

impl FaultEpisode {
    /// Total number of panics the episode produces.
    pub fn panic_count(&self) -> usize {
        1 + self.cascade.len()
    }
}

fn sample_code(weights: &[(PanicCode, f64)], rng: &mut SimRng) -> PanicCode {
    let ws: Vec<f64> = weights.iter().map(|(_, w)| *w).collect();
    weights[rng.weighted_index(&ws)].0
}

/// Plans one episode in the given context.
pub fn plan_episode(
    params: &CalibrationParams,
    context: EpisodeContext,
    rng: &mut SimRng,
) -> FaultEpisode {
    let primary = sample_code(CalibrationParams::code_weights(context), rng);
    // The deterministic part of the escalation policy is the kernel's
    // recovery decision; only the escalation *risk* is probabilistic.
    let escalation = match kernel_decision(primary) {
        // EIKON / EIKCOCTL / MMF / KERN-SVR panics never manifest as
        // HL events: the kernel terminates the application and the
        // phone keeps working.
        KernelDecision::TerminateApplication => None,
        // Phone.app and MSGS Client: the kernel always reboots.
        KernelDecision::RebootPhone => Some(Escalation::SelfShutdown),
        KernelDecision::TerminateWithEscalationRisk => {
            let (p_esc, p_freeze) = match context {
                EpisodeContext::VoiceCall => (
                    params.p_escalate_voice,
                    params.p_freeze_given_escalation_voice,
                ),
                EpisodeContext::Message | EpisodeContext::DeferredMessaging => (
                    params.p_escalate_message,
                    params.p_freeze_given_escalation_message,
                ),
                EpisodeContext::Background => (
                    params.p_escalate_background,
                    params.p_freeze_given_escalation_background,
                ),
            };
            if rng.chance(p_esc) {
                Some(if rng.chance(p_freeze) {
                    Escalation::Freeze
                } else {
                    Escalation::SelfShutdown
                })
            } else {
                None
            }
        }
    };
    // Cascades model error propagation; they accompany escalation
    // (the paper links bursts to propagation between real-time and
    // interactive modules) and only system-level panics propagate.
    let mut cascade = Vec::new();
    if escalation.is_some()
        && !primary.category.is_core_application()
        && rng.chance(params.p_cascade_given_escalation)
    {
        cascade.push(sample_code(&CASCADE_COMPANION_WEIGHTS, rng));
        while rng.chance(params.cascade_continue_p) && cascade.len() < 6 {
            cascade.push(sample_code(&CASCADE_COMPANION_WEIGHTS, rng));
        }
    }
    FaultEpisode {
        context,
        primary,
        cascade,
        escalation,
    }
}

/// Executes the failing operation for `code` against a fresh instance
/// of the responsible OS mechanism, attributing the resulting panic to
/// `app`.
///
/// # Panics
///
/// Panics (in the Rust sense) if the substrate fails to raise the
/// requested code — which would mean the mechanism model and the
/// taxonomy disagree; the test suite pins every code.
pub fn execute_fault(code: PanicCode, app: &str, rng: &mut SimRng) -> Panic {
    let raised = raise(code, app, rng);
    assert_eq!(
        raised.code, code,
        "mechanism raised {} instead of {}",
        raised.code, code
    );
    Panic {
        raised_by: app.to_string(),
        ..raised
    }
}

fn raise(code: PanicCode, app: &str, rng: &mut SimRng) -> Panic {
    match code {
        c if c == codes::KERN_EXEC_0 => {
            let mut index = ObjectIndex::new();
            let good = index.open(app, ObjectKind::Session);
            index.kind_of(good).expect("valid handle resolves");
            // The bug: using a stale/garbage raw handle in a syscall.
            let stale = Handle::from_raw(good.raw() + 1000 + (rng.next_u64() % 1000) as u32);
            index.kind_of(stale).expect_err("stale handle panics")
        }
        c if c == codes::KERN_EXEC_3 => {
            let mut map = MemoryMap::new(app);
            map.map_region(0x1_0000, 0x2000, true, false);
            map.check(0x1_0800, Access::Read).expect("mapped read ok");
            // The bug: dereferencing NULL (most common) or a wild
            // pointer past the mapping.
            let addr = if rng.chance(0.8) {
                rng.next_u64() % 4096
            } else {
                0x4_0000 + rng.next_u64() % 0x1000
            };
            map.check(addr, Access::Read).expect_err("bad deref panics")
        }
        c if c == codes::KERN_EXEC_15 => {
            let mut timer = RTimer::new(app);
            timer
                .after(SimTime::ZERO, SimDuration::from_secs(5))
                .expect("first request ok");
            timer
                .after(SimTime::ZERO, SimDuration::from_secs(9))
                .expect_err("double request panics")
        }
        c if c == codes::E32USER_CBASE_33 => {
            let mut index = ObjectIndex::new();
            let h = index.open(app, ObjectKind::Session);
            index.duplicate(h).expect("duplicate ok");
            index
                .destroy_cobject(h)
                .expect_err("destroying shared CObject panics")
        }
        c if c == codes::E32USER_CBASE_46 => {
            let mut sched = ActiveScheduler::new(app, SimDuration::from_secs(10));
            let ao = sched.add("worker", 0, true);
            // The bug: a completion signalled with no request pending.
            sched.signal(ao).expect_err("stray signal panics")
        }
        c if c == codes::E32USER_CBASE_47 => {
            let mut sched = ActiveScheduler::new(app, SimDuration::from_secs(10));
            let ao = sched.add("careless", 0, false);
            sched.set_active(ao).expect("set active ok");
            sched.signal(ao).expect("signal ok");
            sched
                .run(
                    ao,
                    RunOutcome::Leave(LeaveCode::NotFound),
                    SimDuration::from_millis(3),
                )
                .expect_err("unhandled RunL leave panics")
        }
        c if c == codes::E32USER_CBASE_69 => {
            let cs = CleanupStack::new();
            // The bug: leaving with no trap handler installed.
            cs.leave(LeaveCode::NoMemory)
                .expect_err("leave without trap panics")
        }
        c if c == codes::E32USER_CBASE_91 => {
            let mut heap = Heap::with_capacity(4096);
            let cell = heap.alloc(app, 64).expect("alloc ok");
            heap.free(cell).expect("first free ok");
            heap.free(cell).expect_err("double free panics")
        }
        c if c == codes::E32USER_CBASE_92 => {
            let mut heap = Heap::with_capacity(4096);
            let cell = heap.alloc(app, 64).expect("alloc ok");
            heap.corrupt_header(cell);
            heap.free(cell).expect_err("corrupt header panics")
        }
        c if c == codes::USER_10 => {
            let buf = TBuf::from_str("short", 16).expect("fits");
            let pos = 6 + (rng.next_u64() % 16) as usize;
            buf.mid(pos, 1).expect_err("out-of-bounds position panics")
        }
        c if c == codes::USER_11 => {
            let mut buf = TBuf::from_str("almost-full!", 12).expect("fits");
            buf.append("x").expect_err("overflow panics")
        }
        c if c == codes::KERN_SVR_0 => {
            let mut index = ObjectIndex::new();
            let corrupt = Handle::from_raw(0xDEAD + (rng.next_u64() % 100) as u32);
            index.close(corrupt).expect_err("corrupt close panics")
        }
        c if c == codes::KERN_SVR_70 => {
            let mut port = ServerPort::new(app, 8);
            port.complete(RMessagePtr::null(), "reply")
                .expect_err("null RMessagePtr panics")
        }
        c if c == codes::VIEWSRV_11 => {
            let mut sched = ActiveScheduler::new(app, SimDuration::from_secs(10));
            let ao = sched.add("spinner", 0, true);
            sched.set_active(ao).expect("set active ok");
            sched.signal(ao).expect("signal ok");
            let spin = SimDuration::from_secs(11 + rng.next_u64() % 30);
            sched
                .run(ao, RunOutcome::Ok, spin)
                .expect_err("monopolizing handler panics")
        }
        c if c == codes::EIKON_LISTBOX_3 => {
            let mut lb = ListBox::new(app);
            lb.set_items(vec!["entry".into()]);
            lb.draw().expect_err("draw with no view panics")
        }
        c if c == codes::EIKON_LISTBOX_5 => {
            let mut lb = ListBox::new(app);
            lb.set_items(vec!["a".into(), "b".into()]);
            lb.attach_view();
            let bad = 2 + (rng.next_u64() % 8) as usize;
            lb.set_current_item_index(bad)
                .expect_err("invalid index panics")
        }
        c if c == codes::EIKCOCTL_70 => {
            let mut e = Edwin::new(app);
            e.set_text("predictive text entry");
            e.begin_inline_edit(11, 15).expect("span ok");
            e.set_text("oops"); // state corrupted behind the control
            e.commit_inline_edit("fix")
                .expect_err("stale inline span panics")
        }
        c if c == codes::PHONE_APP_2 => {
            let mut phone = PhoneApp::new();
            phone.dial().expect("first dial ok");
            // The bug: incoming signalling colliding with the dial.
            phone.incoming().expect_err("state collision panics")
        }
        c if c == codes::MSGS_CLIENT_3 => {
            let mut port = ServerPort::new("MsgServer", 8);
            let msg = port.send(app, 7, 8).expect("send ok");
            port.complete(msg, "a reply longer than the descriptor")
                .expect_err("oversized write-back panics")
        }
        c if c == codes::MMF_AUDIO_CLIENT_4 => {
            let mut audio = AudioClient::new(app);
            audio.set_volume(5).expect("legal volume ok");
            let v = 10 + (rng.next_u64() % 90) as i32;
            audio.set_volume(v).expect_err("volume >= 10 panics")
        }
        other => unreachable!("no mechanism for {other} — outside the study's taxonomy"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symfail_symbian::panic::codes::ALL;

    #[test]
    fn every_taxonomy_code_is_mechanically_reachable() {
        let mut rng = SimRng::seed_from(99);
        for (code, _) in ALL {
            let p = execute_fault(code, "TestApp", &mut rng);
            assert_eq!(p.code, code);
            assert_eq!(p.raised_by, "TestApp");
            assert!(!p.reason.is_empty());
        }
    }

    #[test]
    fn planner_respects_category_policies() {
        let params = CalibrationParams::default();
        let mut rng = SimRng::seed_from(1);
        for i in 0..2000 {
            let ctx = match i % 4 {
                0 => EpisodeContext::VoiceCall,
                1 => EpisodeContext::Message,
                2 => EpisodeContext::DeferredMessaging,
                _ => EpisodeContext::Background,
            };
            let ep = plan_episode(&params, ctx, &mut rng);
            if ep.primary.category.is_application_level() {
                assert_eq!(ep.escalation, None, "{} must never escalate", ep.primary);
                assert!(ep.cascade.is_empty());
            }
            if ep.primary.category.is_core_application() {
                assert_eq!(ep.escalation, Some(Escalation::SelfShutdown));
            }
            if ep.escalation.is_none() {
                assert!(ep.cascade.is_empty(), "cascades accompany escalation");
            }
            assert!(ep.panic_count() <= 7);
        }
    }

    #[test]
    fn deferred_context_is_always_msgs_client() {
        let params = CalibrationParams::default();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..50 {
            let ep = plan_episode(&params, EpisodeContext::DeferredMessaging, &mut rng);
            assert_eq!(ep.primary, codes::MSGS_CLIENT_3);
            assert_eq!(ep.escalation, Some(Escalation::SelfShutdown));
        }
    }

    #[test]
    fn escalation_rates_roughly_match_calibration() {
        let params = CalibrationParams::default();
        let mut rng = SimRng::seed_from(5);
        let n = 20_000;
        let mut escalated = 0;
        for _ in 0..n {
            let ep = plan_episode(&params, EpisodeContext::VoiceCall, &mut rng);
            if ep.primary.category.is_core_application()
                || ep.primary.category.is_application_level()
            {
                continue;
            }
            if ep.escalation.is_some() {
                escalated += 1;
            }
        }
        let frac = escalated as f64 / n as f64;
        assert!(
            (frac - params.p_escalate_voice).abs() < 0.02,
            "escalation fraction {frac}"
        );
    }

    #[test]
    fn voice_context_never_yields_background_only_codes() {
        let params = CalibrationParams::default();
        let mut rng = SimRng::seed_from(7);
        for _ in 0..5000 {
            let ep = plan_episode(&params, EpisodeContext::VoiceCall, &mut rng);
            assert_ne!(ep.primary, codes::MMF_AUDIO_CLIENT_4);
            assert_ne!(ep.primary, codes::EIKCOCTL_70);
            assert_ne!(ep.primary.category.as_str(), "MSGS Client");
        }
    }
}
