//! Calibration of the generative failure model.
//!
//! Every constant in this module is derived from the paper's published
//! numbers (see DESIGN.md §3 and `symfail_core::analysis::targets`):
//! the fleet totals (396 panics, 360 freezes, 471 self-shutdowns, 1778
//! shutdown events over ≈115–130 k powered phone-hours) fix the event
//! rates, Table 2 fixes the panic-code weights, Table 3 fixes the
//! activity-context split, and the Figure 3/5 percentages fix the
//! cascade and escalation probabilities.
//!
//! The constants parameterize a *mechanistic* pipeline — fault class →
//! failing substrate operation → panic → kernel recovery → log file —
//! so the measured output matching the paper is an end-to-end check of
//! the whole reproduction, not a tautology: the analysis pipeline only
//! sees the flash files.

use serde::{Deserialize, Serialize};

use symfail_symbian::panic::codes;
use symfail_symbian::PanicCode;

/// The activity context a fault episode is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EpisodeContext {
    /// During a voice call (real-time telephony interference).
    VoiceCall,
    /// During message composition / reception.
    Message,
    /// Asynchronous messaging-server completion *after* the message
    /// activity window closed (the logger records no activity).
    DeferredMessaging,
    /// Plain background execution.
    Background,
}

/// Panic-code weights for episodes attached to voice calls. The USER
/// and ViewSrv panics appear *only* here, matching the paper's
/// observation that they are triggered only while a voice call is
/// performed.
pub const VOICE_CODE_WEIGHTS: [(PanicCode, f64); 11] = [
    (codes::KERN_EXEC_3, 90.0),
    (codes::USER_11, 23.0),
    (codes::E32USER_CBASE_69, 15.0),
    (codes::VIEWSRV_11, 10.0),
    (codes::KERN_EXEC_0, 8.0),
    (codes::E32USER_CBASE_33, 8.0),
    (codes::USER_10, 6.0),
    (codes::E32USER_CBASE_46, 1.0),
    (codes::E32USER_CBASE_92, 1.0),
    (codes::E32USER_CBASE_91, 1.0),
    (codes::KERN_EXEC_15, 1.0),
];

/// Panic-code weights for episodes attached to message activity.
/// `Phone.app` appears only here, matching the paper's observation
/// that it manifests only when a short message is sent/received.
pub const MESSAGE_CODE_WEIGHTS: [(PanicCode, f64); 5] = [
    (codes::KERN_EXEC_3, 15.0),
    (codes::E32USER_CBASE_69, 2.0),
    (codes::KERN_EXEC_0, 2.0),
    (codes::E32USER_CBASE_33, 1.0),
    (codes::PHONE_APP_2, 1.0),
];

/// Panic-code weights for background episodes. The purely
/// application-level codes (EIKON, EIKCOCTL, MMF, KERN-SVR) live here.
pub const BACKGROUND_CODE_WEIGHTS: [(PanicCode, f64); 15] = [
    (codes::KERN_EXEC_3, 118.0),
    (codes::E32USER_CBASE_69, 23.0),
    (codes::KERN_EXEC_0, 15.0),
    (codes::E32USER_CBASE_33, 13.0),
    (codes::KERN_SVR_70, 3.0),
    (codes::EIKON_LISTBOX_5, 3.0),
    (codes::E32USER_CBASE_46, 2.0),
    (codes::E32USER_CBASE_92, 2.0),
    (codes::E32USER_CBASE_91, 1.0),
    (codes::KERN_EXEC_15, 1.0),
    (codes::E32USER_CBASE_47, 1.0),
    (codes::KERN_SVR_0, 1.0),
    (codes::EIKON_LISTBOX_3, 1.0),
    (codes::EIKCOCTL_70, 1.0),
    (codes::MMF_AUDIO_CLIENT_4, 1.0),
];

/// Companion-code weights for the follow-up panics of a cascade
/// (error propagation terminates multiple applications; the follow-ups
/// are dominated by access violations, like the overall mix).
pub const CASCADE_COMPANION_WEIGHTS: [(PanicCode, f64); 6] = [
    (codes::KERN_EXEC_3, 75.0),
    (codes::E32USER_CBASE_69, 8.0),
    (codes::E32USER_CBASE_33, 6.0),
    (codes::KERN_EXEC_0, 6.0),
    (codes::USER_11, 4.0),
    (codes::E32USER_CBASE_46, 1.0),
];

/// All tunable parameters of the fleet campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationParams {
    /// Number of phones in the fleet.
    pub phones: u32,
    /// Campaign length in days (14 months ≈ 425 days).
    pub campaign_days: u32,
    /// Phones enroll uniformly over the first this-many days.
    pub enrollment_spread_days: u32,
    /// Phones may drop out up to this many days before the end
    /// (firmware reflash, device replaced, participant left).
    pub attrition_spread_days: u32,
    /// Fraction of users who power the phone off at night.
    pub nightly_shutdown_fraction: f64,
    /// Heartbeat period of the deployed logger, seconds.
    pub heartbeat_period_secs: u64,

    /// Probability a voice call carries a fault episode.
    pub p_episode_per_call: f64,
    /// Probability a message carries a fault episode.
    pub p_episode_per_message: f64,
    /// Given a message episode, probability it is the deferred
    /// messaging-server kind (`MSGS Client 3`, unspecified activity).
    pub p_message_episode_deferred: f64,
    /// Background episode rate per powered hour.
    pub background_episode_rate_per_hour: f64,

    /// Escalation probability of a voice-context episode.
    pub p_escalate_voice: f64,
    /// Escalation probability of a message-context episode.
    pub p_escalate_message: f64,
    /// Escalation probability of a background episode.
    pub p_escalate_background: f64,
    /// Probability an escalated episode freezes the phone given the
    /// context is a voice call (otherwise it self-shuts).
    pub p_freeze_given_escalation_voice: f64,
    /// As above for message context.
    pub p_freeze_given_escalation_message: f64,
    /// As above for background context.
    pub p_freeze_given_escalation_background: f64,

    /// Probability an escalated episode becomes a cascade (≥ 2
    /// panics).
    pub p_cascade_given_escalation: f64,
    /// Geometric continuation probability for cascade size beyond 2.
    pub cascade_continue_p: f64,

    /// Isolated (panic-less) freeze rate per powered hour.
    pub isolated_freeze_rate_per_hour: f64,
    /// Isolated self-shutdown rate per powered hour.
    pub isolated_self_shutdown_rate_per_hour: f64,

    /// User-initiated daytime reboots per day.
    pub user_reboot_rate_per_day: f64,
    /// Probability the user power-cycles the phone shortly after a
    /// non-escalated panic (the phone misbehaves, the user reboots
    /// it). These reboots usually exceed the 360 s filter, which is
    /// why including *all* shutdown events raises the panic-related
    /// fraction from 51% to 55% in the paper.
    pub p_user_reboot_after_panic: f64,
    /// Probability per day of running the battery flat (LOWBT).
    pub p_lowbt_per_day: f64,

    /// Median self-shutdown off-duration, seconds (Fig. 2 inset peak).
    pub self_shutdown_median_secs: f64,
    /// Log-normal sigma of the self-shutdown duration.
    pub self_shutdown_sigma: f64,
    /// Median user daytime-reboot off-duration, seconds.
    pub user_reboot_median_secs: f64,
    /// Log-normal sigma of user reboot durations.
    pub user_reboot_sigma: f64,
    /// Log-normal sigma of the night off-duration around the
    /// wake–sleep gap.
    pub night_sigma: f64,

    /// Rate of output failures (value failures the logger cannot see)
    /// per powered hour — exercised by the user-report extension.
    pub output_failure_rate_per_hour: f64,
    /// Probability the user files a report when they experience an
    /// output failure (the paper expects users to be unreliable).
    pub p_user_reports_output_failure: f64,

    /// Mean voice calls per day.
    pub calls_per_day: f64,
    /// Mean messages per day.
    pub messages_per_day: f64,
    /// Mean interactive application sessions per day.
    pub app_sessions_per_day: f64,
}

impl Default for CalibrationParams {
    fn default() -> Self {
        Self {
            phones: 25,
            campaign_days: 425,
            enrollment_spread_days: 280,
            attrition_spread_days: 160,
            nightly_shutdown_fraction: 0.20,
            heartbeat_period_secs: 300,

            p_episode_per_call: 0.0066,
            p_episode_per_message: 0.00112,
            p_message_episode_deferred: 25.0 / 43.0,
            background_episode_rate_per_hour: 0.00126,

            p_escalate_voice: 0.40,
            p_escalate_message: 0.50,
            p_escalate_background: 0.35,
            p_freeze_given_escalation_voice: 0.80,
            p_freeze_given_escalation_message: 0.50,
            p_freeze_given_escalation_background: 0.55,

            p_cascade_given_escalation: 0.34,
            cascade_continue_p: 0.35,

            isolated_freeze_rate_per_hour: 0.00265,
            isolated_self_shutdown_rate_per_hour: 0.00315,

            user_reboot_rate_per_day: 0.042,
            p_user_reboot_after_panic: 0.08,
            p_lowbt_per_day: 0.015,

            self_shutdown_median_secs: 80.0,
            self_shutdown_sigma: 0.5,
            user_reboot_median_secs: 1800.0,
            user_reboot_sigma: 1.0,
            night_sigma: 0.10,

            output_failure_rate_per_hour: 0.004,
            p_user_reports_output_failure: 0.15,

            calls_per_day: 4.0,
            messages_per_day: 7.0,
            app_sessions_per_day: 10.0,
        }
    }
}

impl CalibrationParams {
    /// The code-weight table for an episode context.
    pub fn code_weights(context: EpisodeContext) -> &'static [(PanicCode, f64)] {
        match context {
            EpisodeContext::VoiceCall => &VOICE_CODE_WEIGHTS,
            EpisodeContext::Message => &MESSAGE_CODE_WEIGHTS,
            EpisodeContext::DeferredMessaging => DEFERRED_WEIGHTS,
            EpisodeContext::Background => &BACKGROUND_CODE_WEIGHTS,
        }
    }
}

/// Deferred messaging episodes are always the asynchronous descriptor
/// write-back failure.
const DEFERRED_WEIGHTS: &[(PanicCode, f64)] = &[(codes::MSGS_CLIENT_3, 1.0)];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use symfail_core::analysis::targets;

    /// Summing the context tables (plus the deferred MSGS quota of 25)
    /// must reproduce Table 2's counts code by code.
    #[test]
    fn context_tables_partition_table2() {
        let mut sums: BTreeMap<String, f64> = BTreeMap::new();
        for (code, w) in VOICE_CODE_WEIGHTS
            .iter()
            .chain(MESSAGE_CODE_WEIGHTS.iter())
            .chain(BACKGROUND_CODE_WEIGHTS.iter())
        {
            *sums.entry(code.to_string()).or_insert(0.0) += w;
        }
        *sums.entry(codes::MSGS_CLIENT_3.to_string()).or_insert(0.0) += 25.0;
        for (code, count, _) in targets::PANIC_DISTRIBUTION {
            let got = sums.get(&code.to_string()).copied().unwrap_or(0.0);
            assert!(
                (got - count as f64).abs() < 1e-9,
                "{code}: tables give {got}, Table 2 says {count}"
            );
        }
        let total: f64 = sums.values().sum();
        assert!((total - targets::TOTAL_PANICS as f64).abs() < 1e-9);
    }

    #[test]
    fn defaults_are_sane_probabilities() {
        let p = CalibrationParams::default();
        for prob in [
            p.nightly_shutdown_fraction,
            p.p_episode_per_call,
            p.p_episode_per_message,
            p.p_message_episode_deferred,
            p.p_escalate_voice,
            p.p_escalate_message,
            p.p_escalate_background,
            p.p_freeze_given_escalation_voice,
            p.p_freeze_given_escalation_message,
            p.p_freeze_given_escalation_background,
            p.p_cascade_given_escalation,
            p.cascade_continue_p,
            p.p_lowbt_per_day,
        ] {
            assert!((0.0..=1.0).contains(&prob), "{prob}");
        }
        assert!(p.phones > 0 && p.campaign_days > 0);
        assert!(p.enrollment_spread_days < p.campaign_days);
    }

    #[test]
    fn code_weights_lookup_covers_all_contexts() {
        for ctx in [
            EpisodeContext::VoiceCall,
            EpisodeContext::Message,
            EpisodeContext::DeferredMessaging,
            EpisodeContext::Background,
        ] {
            let w = CalibrationParams::code_weights(ctx);
            assert!(!w.is_empty());
            assert!(w.iter().all(|(_, x)| *x > 0.0));
        }
    }

    #[test]
    fn never_hl_codes_only_in_background() {
        let voice_msg: Vec<&PanicCode> = VOICE_CODE_WEIGHTS
            .iter()
            .chain(MESSAGE_CODE_WEIGHTS.iter())
            .map(|(c, _)| c)
            .collect();
        for code in voice_msg {
            assert!(
                !code.category.is_application_level(),
                "{code} is never-HL but appears in an escalating context"
            );
        }
    }
}
