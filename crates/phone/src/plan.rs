//! Cost-balanced shard planning for multi-process campaigns.
//!
//! PR 7's fixed `[iP/N, (i+1)P/N)` split pins the distributed
//! critical path to whichever shard drew the expensive phones —
//! stratified enrollment makes low phone ids observe far longer than
//! high ids, so shard 0 of 2 carries roughly 3× the work of shard 1
//! and 2 processes bought only 1.35×. The planner here replaces the
//! uniform split with the classic measured-cost shape: estimate a
//! cost per phone ([`crate::fleet::FleetCampaign::estimate_phone_costs`]
//! statically, or a `--costs-json` vector measured from a prior run's
//! per-phone `parse_seconds`), then choose contiguous-but-uneven cut
//! points minimizing the maximum shard cost.
//!
//! The optimizer is prefix sums + a binary search on the max-cost
//! bound `B`: a bound is feasible when a greedy sweep (each shard
//! takes the longest prefix that fits under `B`, found by
//! `partition_point` on the prefix sums) covers all phones within
//! `count` shards. Bisection over `B` converges to the optimum —
//! the textbook "painters' partition" scheme, `O(P + count · log P)`
//! per probe.
//!
//! Cuts stay *contiguous* on purpose: the checkpoint-merge contract
//! (disjoint intervals, jointly covering, absorbed strictly in
//! phone-id order) and the byte-identical-report invariant both rely
//! on each process owning one interval of the id space. Schema v4
//! checkpoints carry the explicit `[start, end)` interval, so any cut
//! set the planner picks round-trips through `merge-checkpoints`
//! unchanged.

use symfail_core::analysis::checkpoint::ShardTopology;

/// How a sharded run assigns phones to shards.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum BalanceMode {
    /// The PR 7 fixed split: shard `i` of `N` owns `[iP/N, (i+1)P/N)`.
    #[default]
    Uniform,
    /// Cost-balanced cuts from the static per-phone cost estimator
    /// (campaign config only — no prior run needed).
    Static,
    /// Cost-balanced cuts from measured per-phone costs (seconds), as
    /// recorded in a prior run's timing JSON (`phone_costs`). Must
    /// hold exactly one entry per phone in the fleet.
    Measured(Vec<f64>),
}

impl BalanceMode {
    /// Stable CLI/JSON label.
    pub fn as_str(&self) -> &'static str {
        match self {
            BalanceMode::Uniform => "uniform",
            BalanceMode::Static => "static",
            BalanceMode::Measured(_) => "measured",
        }
    }
}

/// A planned contiguous partition of `[0, fleet_phones)` into `count`
/// shards, with the per-shard predicted cost under the cost vector it
/// was planned from. Cut `i` owns phones `[cuts[i], cuts[i+1])`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// `count + 1` ascending cut points; `cuts[0] == 0` and
    /// `cuts[count] == fleet_phones`.
    cuts: Vec<u32>,
    /// Predicted cost of each shard (sum of its phones' costs, in the
    /// cost vector's units — estimator units for `static`, seconds
    /// for `measured`).
    predicted: Vec<f64>,
}

impl ShardPlan {
    /// Plans `count` cost-balanced shards over `costs` (one entry per
    /// phone). Negative, NaN and infinite costs are treated as zero.
    pub fn from_costs(costs: &[f64], count: u32) -> Self {
        let cuts = plan_cuts(costs, count);
        Self::with_cuts(cuts, costs)
    }

    /// The PR 7 uniform `i/N` partition, costed under `costs` — what
    /// `plan-shards` prints alongside the balanced plan so the
    /// predicted imbalance is visible.
    pub fn uniform(costs: &[f64], count: u32) -> Self {
        assert!(count >= 1, "shard count must be >= 1");
        let phones = costs.len() as u32;
        let mut cuts = Vec::with_capacity(count as usize + 1);
        cuts.push(0);
        for index in 0..count {
            cuts.push(ShardTopology::uniform(index, count, phones).end);
        }
        Self::with_cuts(cuts, costs)
    }

    fn with_cuts(cuts: Vec<u32>, costs: &[f64]) -> Self {
        let predicted = cuts
            .windows(2)
            .map(|w| {
                costs[w[0] as usize..w[1] as usize]
                    .iter()
                    .map(|&c| sanitize(c))
                    .sum()
            })
            .collect();
        Self { cuts, predicted }
    }

    /// Number of shards in the plan.
    pub fn count(&self) -> u32 {
        (self.cuts.len() - 1) as u32
    }

    /// Total phones the plan partitions.
    pub fn fleet_phones(&self) -> u32 {
        *self.cuts.last().expect("cuts never empty")
    }

    /// The ascending cut points (`count + 1` of them).
    pub fn cuts(&self) -> &[u32] {
        &self.cuts
    }

    /// The interval `[start, end)` of shard `index`.
    pub fn interval(&self, index: u32) -> (u32, u32) {
        (self.cuts[index as usize], self.cuts[index as usize + 1])
    }

    /// Predicted cost of shard `index` under the planning cost vector.
    pub fn predicted_cost(&self, index: u32) -> f64 {
        self.predicted[index as usize]
    }

    /// The predicted critical path: the most expensive shard's cost.
    pub fn max_predicted_cost(&self) -> f64 {
        self.predicted.iter().cloned().fold(0.0, f64::max)
    }

    /// The checkpoint topology of shard `index` under this plan.
    pub fn topology(&self, index: u32) -> ShardTopology {
        let (start, end) = self.interval(index);
        ShardTopology {
            index,
            count: self.count(),
            fleet_phones: self.fleet_phones(),
            start,
            end,
        }
    }
}

fn sanitize(c: f64) -> f64 {
    if c.is_finite() && c > 0.0 {
        c
    } else {
        0.0
    }
}

/// Chooses `count + 1` ascending cut points partitioning
/// `[0, costs.len())` into `count` contiguous intervals minimizing the
/// maximum interval cost. Always returns an exact partition
/// (`cuts[0] == 0`, `cuts[count] == costs.len()`, non-decreasing) for
/// any cost vector — including empty fleets, all-zero costs, and
/// `count > costs.len()` (trailing shards come out empty).
pub fn plan_cuts(costs: &[f64], count: u32) -> Vec<u32> {
    assert!(count >= 1, "shard count must be >= 1");
    let mut prefix = Vec::with_capacity(costs.len() + 1);
    let mut sum = 0.0f64;
    prefix.push(0.0);
    for &c in costs {
        sum += sanitize(c);
        prefix.push(sum);
    }
    let max_single = costs.iter().map(|&c| sanitize(c)).fold(0.0, f64::max);
    // The optimum lies in [max(max_single, total/count), total]:
    // bisect the feasibility predicate. `hi` stays feasible
    // throughout (one interval holding everything always fits under
    // the total), so the final reconstruction cannot fail.
    let mut lo = max_single.max(sum / count as f64);
    let mut hi = sum.max(lo);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if cuts_for_bound(&prefix, count, mid).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    cuts_for_bound(&prefix, count, hi).expect("hi bound is always feasible")
}

/// Greedy feasibility sweep: each shard takes the longest prefix whose
/// cost fits under `bound`. Returns the cut points when all phones fit
/// in `count` shards, `None` otherwise.
fn cuts_for_bound(prefix: &[f64], count: u32, bound: f64) -> Option<Vec<u32>> {
    let phones = prefix.len() - 1;
    let mut cuts = Vec::with_capacity(count as usize + 1);
    cuts.push(0u32);
    let mut at = 0usize;
    for _ in 0..count {
        if at >= phones {
            // More shards than remaining phones: trailing shards own
            // the empty interval [phones, phones).
            cuts.push(phones as u32);
            continue;
        }
        let limit = prefix[at] + bound;
        // Largest j with prefix[j] <= limit. prefix[at] <= limit, so
        // the probe lands at least at `at`; clamp forces one phone of
        // progress even when a single phone exceeds the bound (the
        // sweep then fails feasibility at the end instead of looping).
        let j = prefix.partition_point(|&s| s <= limit) - 1;
        let j = j.clamp(at + 1, phones);
        cuts.push(j as u32);
        at = j;
    }
    (at >= phones).then_some(cuts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(cuts: &[u32], count: u32, phones: u32) {
        assert_eq!(cuts.len() as u32, count + 1);
        assert_eq!(cuts[0], 0);
        assert_eq!(*cuts.last().unwrap(), phones);
        for w in cuts.windows(2) {
            assert!(w[0] <= w[1], "cuts must be non-decreasing: {cuts:?}");
        }
    }

    /// Brute-force min-max over every contiguous partition (small
    /// inputs only) — the optimality oracle.
    fn brute_force_best(costs: &[f64], count: u32) -> f64 {
        fn go(costs: &[f64], count: u32) -> f64 {
            if count == 1 {
                return costs.iter().sum();
            }
            let mut best = f64::INFINITY;
            for head in 0..=costs.len() {
                let head_cost: f64 = costs[..head].iter().sum();
                let rest = go(&costs[head..], count - 1);
                best = best.min(head_cost.max(rest));
            }
            best
        }
        go(costs, count)
    }

    #[test]
    fn planner_matches_brute_force_on_small_inputs() {
        let cases: &[(&[f64], u32)] = &[
            (&[1.0, 1.0, 1.0, 1.0], 2),
            (&[10.0, 1.0, 1.0, 1.0], 2),
            (&[5.0, 4.0, 3.0, 2.0, 1.0], 3),
            (&[1.0, 2.0, 3.0, 4.0, 5.0], 2),
            (&[8.0, 1.0, 1.0, 1.0, 1.0, 8.0], 3),
            (&[0.0, 0.0, 7.0, 0.0], 2),
            (&[3.0], 4),
        ];
        for &(costs, count) in cases {
            let plan = ShardPlan::from_costs(costs, count);
            assert_partition(plan.cuts(), count, costs.len() as u32);
            let best = brute_force_best(costs, count);
            let got = plan.max_predicted_cost();
            assert!(
                (got - best).abs() <= 1e-9 * best.max(1.0),
                "planner max {got} vs optimal {best} for {costs:?} / {count}"
            );
        }
    }

    #[test]
    fn balanced_cuts_beat_uniform_on_a_monotone_gradient() {
        // The campaign's actual shape: early phones cost ~3× late ones.
        let costs: Vec<f64> = (0..1000).map(|i| 3.0 - 2.0 * (i as f64) / 1000.0).collect();
        for count in [2, 4, 8] {
            let balanced = ShardPlan::from_costs(&costs, count);
            let uniform = ShardPlan::uniform(&costs, count);
            assert_partition(balanced.cuts(), count, 1000);
            // At 2 shards the optimum is total/2 = 1000.5 vs uniform's
            // 1250.5 — a 0.80 ratio exactly; larger counts do better.
            assert!(
                balanced.max_predicted_cost() < 0.85 * uniform.max_predicted_cost(),
                "{count} shards: balanced {} not clearly under uniform {}",
                balanced.max_predicted_cost(),
                uniform.max_predicted_cost()
            );
        }
    }

    #[test]
    fn degenerate_inputs_still_partition_exactly() {
        // Empty fleet.
        assert_partition(&plan_cuts(&[], 3), 3, 0);
        // All-zero costs.
        assert_partition(&plan_cuts(&[0.0; 7], 3), 3, 7);
        // NaN / negative / infinite costs sanitize to zero.
        let weird = [f64::NAN, -1.0, f64::INFINITY, 2.0, 1.0];
        assert_partition(&plan_cuts(&weird, 2), 2, 5);
        // More shards than phones.
        assert_partition(&plan_cuts(&[1.0, 2.0], 5), 5, 2);
    }

    #[test]
    fn plan_topologies_chain_into_a_cover() {
        let costs: Vec<f64> = (0..100).map(|i| (i % 13) as f64 + 0.5).collect();
        let plan = ShardPlan::from_costs(&costs, 4);
        let mut cursor = 0;
        for index in 0..4 {
            let topo = plan.topology(index);
            assert_eq!(topo.index, index);
            assert_eq!(topo.count, 4);
            assert_eq!(topo.fleet_phones, 100);
            assert_eq!(topo.start, cursor);
            cursor = topo.end;
        }
        assert_eq!(cursor, 100);
    }

    #[test]
    fn uniform_plan_matches_the_formula_topology() {
        let costs = vec![1.0; 10];
        let plan = ShardPlan::uniform(&costs, 3);
        for index in 0..3 {
            assert_eq!(
                plan.topology(index),
                ShardTopology::uniform(index, 3, 10),
                "uniform plan must reproduce the i/N formula"
            );
        }
    }
}
