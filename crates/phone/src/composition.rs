//! Fleet composition: the device-class dimension of the campaign.
//!
//! The paper's Section 4 slices user-reported failures by *device
//! class* (a contingency analysis of failure type × class, chi-square
//! tested), and its Section 5 fleet mixes Symbian 6.1–9.0 handsets.
//! This module makes that heterogeneity a first-class campaign
//! concept: a [`FleetComposition`] assigns every phone a
//! [`DeviceClass`] deterministically (the same stratified coprime
//! permutation shape as [`SymbianVersion::assign`], consuming **no**
//! RNG, so the per-phone `fork` streams — and therefore the harvest —
//! stay byte-identical for any worker count), and a [`DeviceProfile`]
//! resolves the class plus firmware into per-phone
//! [`CalibrationParams`] scaling and a corruption tendency.
//!
//! The default composition is 100% [`DeviceClass::Smartphone`], whose
//! multipliers are all exactly `1.0`: scaling through it is a bitwise
//! no-op, which is what lets the heterogeneous-fleet refactor keep the
//! homogeneous campaign byte-identical to its pre-composition output.

use crate::calibration::CalibrationParams;
use crate::corruption::CorruptionRates;
use crate::firmware::SymbianVersion;

/// A Section-4-style device class: the market segment a handset
/// belongs to, which sets how hard it is used and how failure-prone
/// it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceClass {
    /// Enterprise communicator: heavy daily use, many third-party
    /// applications, the most failure-exposed segment.
    Communicator,
    /// Mainstream smartphone — the neutral reference class; all of
    /// its multipliers are exactly `1.0`.
    Smartphone,
    /// Entry-level handset: light use, few installed applications.
    EntryLevel,
}

impl DeviceClass {
    /// All classes, heaviest-use first.
    pub const ALL: [DeviceClass; 3] = [
        DeviceClass::Communicator,
        DeviceClass::Smartphone,
        DeviceClass::EntryLevel,
    ];

    /// Display / spec label.
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceClass::Communicator => "communicator",
            DeviceClass::Smartphone => "smartphone",
            DeviceClass::EntryLevel => "entry-level",
        }
    }

    /// Parse a spec label back into a class.
    pub fn parse(s: &str) -> Option<DeviceClass> {
        DeviceClass::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// Multiplier on the usage-volume parameters (calls, messages,
    /// app sessions per day): communicators are driven hard,
    /// entry-level phones barely at all.
    pub fn usage_multiplier(self) -> f64 {
        match self {
            DeviceClass::Communicator => 1.45,
            DeviceClass::Smartphone => 1.0,
            DeviceClass::EntryLevel => 0.55,
        }
    }

    /// Multiplier on the fault-exposure parameters (episode
    /// probabilities and isolated failure rates), on top of the
    /// per-firmware residual-fault multiplier.
    pub fn fault_multiplier(self) -> f64 {
        match self {
            DeviceClass::Communicator => 1.2,
            DeviceClass::Smartphone => 1.0,
            DeviceClass::EntryLevel => 0.85,
        }
    }

    /// Multiplier on the flash-corruption probabilities: heavier use
    /// means more write cycles and more interrupted writes.
    pub fn corruption_tendency(self) -> f64 {
        match self {
            DeviceClass::Communicator => 1.3,
            DeviceClass::Smartphone => 1.0,
            DeviceClass::EntryLevel => 0.7,
        }
    }
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The resolved per-phone device identity: class plus firmware. This
/// is what the campaign consults when it sets a phone up — everything
/// class-specific (parameter scaling, corruption tendency) flows
/// through here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceProfile {
    /// The Section-4 device class.
    pub class: DeviceClass,
    /// The Symbian release the device runs.
    pub firmware: SymbianVersion,
}

impl DeviceProfile {
    /// Scale the campaign-wide calibration through this device's
    /// class: usage volumes by the usage multiplier, fault exposure by
    /// the fault multiplier (probabilities clamped to 1). For the
    /// default [`DeviceClass::Smartphone`] every multiplier is exactly
    /// `1.0`, so the result is bitwise identical to `base`.
    pub fn scale_params(&self, base: &CalibrationParams) -> CalibrationParams {
        let usage = self.class.usage_multiplier();
        let fault = self.class.fault_multiplier();
        CalibrationParams {
            calls_per_day: base.calls_per_day * usage,
            messages_per_day: base.messages_per_day * usage,
            app_sessions_per_day: base.app_sessions_per_day * usage,
            p_episode_per_call: (base.p_episode_per_call * fault).min(1.0),
            p_episode_per_message: (base.p_episode_per_message * fault).min(1.0),
            background_episode_rate_per_hour: base.background_episode_rate_per_hour * fault,
            isolated_freeze_rate_per_hour: base.isolated_freeze_rate_per_hour * fault,
            isolated_self_shutdown_rate_per_hour: base.isolated_self_shutdown_rate_per_hour * fault,
            output_failure_rate_per_hour: base.output_failure_rate_per_hour * fault,
            ..*base
        }
    }

    /// Scale a corruption profile's rates through this device's
    /// corruption tendency (probabilities clamped to 1; attempt counts
    /// and line caps untouched). Tendency `1.0` is a bitwise no-op.
    pub fn scale_corruption(&self, base: CorruptionRates) -> CorruptionRates {
        let t = self.class.corruption_tendency();
        CorruptionRates {
            p_tail_loss: (base.p_tail_loss * t).min(1.0),
            p_dup_block: (base.p_dup_block * t).min(1.0),
            p_reorder_block: (base.p_reorder_block * t).min(1.0),
            p_bitflip: (base.p_bitflip * t).min(1.0),
            p_truncate: (base.p_truncate * t).min(1.0),
            ..base
        }
    }
}

/// A typed `--fleet <spec>` parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetSpecError {
    /// The spec string was empty.
    Empty,
    /// An entry had no `class:weight` separator.
    NoColon {
        /// The offending entry.
        entry: String,
    },
    /// An entry named a class that does not exist.
    UnknownClass {
        /// The unrecognized class token.
        token: String,
    },
    /// An entry's weight was not a finite non-negative number.
    BadWeight {
        /// The unparseable weight token.
        token: String,
    },
    /// The same class appeared twice.
    DuplicateClass {
        /// The repeated class.
        class: DeviceClass,
    },
    /// Every weight was zero.
    ZeroTotal,
}

impl std::fmt::Display for FleetSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let known = || {
            DeviceClass::ALL
                .iter()
                .map(|c| c.as_str())
                .collect::<Vec<_>>()
                .join("|")
        };
        match self {
            FleetSpecError::Empty => {
                write!(
                    f,
                    "empty fleet spec (try default, mixed or class:weight,...)"
                )
            }
            FleetSpecError::NoColon { entry } => {
                write!(f, "fleet entry {entry:?} is not class:weight")
            }
            FleetSpecError::UnknownClass { token } => {
                write!(f, "unknown device class {token:?} (try {})", known())
            }
            FleetSpecError::BadWeight { token } => {
                write!(
                    f,
                    "fleet weight {token:?} is not a finite non-negative number"
                )
            }
            FleetSpecError::DuplicateClass { class } => {
                write!(f, "device class {class} appears twice in the fleet spec")
            }
            FleetSpecError::ZeroTotal => write!(f, "fleet spec weights sum to zero"),
        }
    }
}

impl std::error::Error for FleetSpecError {}

/// The class mix of a campaign fleet: which device classes are
/// present and at what share. Assignment is deterministic in the
/// phone id (no RNG), so any worker, shard or resumed process agrees
/// on every phone's class.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetComposition {
    /// `(class, share)` in [`DeviceClass::ALL`] order; shares are
    /// normalized to sum to 1 and strictly positive.
    shares: Vec<(DeviceClass, f64)>,
}

impl Default for FleetComposition {
    /// The homogeneous pre-composition fleet: every phone a
    /// [`DeviceClass::Smartphone`].
    fn default() -> Self {
        FleetComposition {
            shares: vec![(DeviceClass::Smartphone, 1.0)],
        }
    }
}

impl FleetComposition {
    /// The built-in heterogeneous preset (`--fleet mixed`): a
    /// communicator-heavy enterprise tranche, a mainstream majority
    /// and an entry-level tail.
    pub fn mixed() -> Self {
        FleetComposition {
            shares: vec![
                (DeviceClass::Communicator, 0.24),
                (DeviceClass::Smartphone, 0.60),
                (DeviceClass::EntryLevel, 0.16),
            ],
        }
    }

    /// Parse a `--fleet` spec: `default`, `mixed`, or a comma list of
    /// `class:weight` entries (weights are relative and normalized).
    pub fn parse(spec: &str) -> Result<FleetComposition, FleetSpecError> {
        let spec = spec.trim();
        match spec {
            "" => return Err(FleetSpecError::Empty),
            "default" => return Ok(FleetComposition::default()),
            "mixed" => return Ok(FleetComposition::mixed()),
            _ => {}
        }
        let mut weights: Vec<(DeviceClass, f64)> = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            let (class_tok, weight_tok) = entry.split_once(':').ok_or(FleetSpecError::NoColon {
                entry: entry.to_string(),
            })?;
            let class =
                DeviceClass::parse(class_tok.trim()).ok_or(FleetSpecError::UnknownClass {
                    token: class_tok.trim().to_string(),
                })?;
            let weight: f64 = weight_tok
                .trim()
                .parse()
                .map_err(|_| FleetSpecError::BadWeight {
                    token: weight_tok.trim().to_string(),
                })?;
            if !weight.is_finite() || weight < 0.0 {
                return Err(FleetSpecError::BadWeight {
                    token: weight_tok.trim().to_string(),
                });
            }
            if weights.iter().any(|&(c, _)| c == class) {
                return Err(FleetSpecError::DuplicateClass { class });
            }
            weights.push((class, weight));
        }
        let total: f64 = weights.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            return Err(FleetSpecError::ZeroTotal);
        }
        // Canonical order and normalized shares, so equal mixes
        // written in different orders produce the same composition.
        let mut shares: Vec<(DeviceClass, f64)> = DeviceClass::ALL
            .into_iter()
            .filter_map(|class| {
                weights
                    .iter()
                    .find(|&&(c, w)| c == class && w > 0.0)
                    .map(|&(_, w)| (class, w / total))
            })
            .collect();
        if shares.len() == 1 {
            // A single surviving class owns the whole fleet exactly.
            shares[0].1 = 1.0;
        }
        Ok(FleetComposition { shares })
    }

    /// Whether this is the homogeneous default composition.
    pub fn is_default(&self) -> bool {
        self.shares == [(DeviceClass::Smartphone, 1.0)]
    }

    /// The canonical spec string: `default` for the homogeneous
    /// fleet, otherwise `class:share,...` in [`DeviceClass::ALL`]
    /// order with normalized shares. Two compositions are equal iff
    /// their canonical specs are — this string is what the campaign
    /// fingerprint and the checkpoint header carry.
    pub fn spec_string(&self) -> String {
        if self.is_default() {
            return "default".to_string();
        }
        self.shares
            .iter()
            .map(|(c, s)| format!("{}:{}", c.as_str(), s))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The `(class, share)` mix, canonical order.
    pub fn shares(&self) -> &[(DeviceClass, f64)] {
        &self.shares
    }

    /// Stratified class assignment for phone `id` of `fleet` phones:
    /// the same fixed-coprime-permutation shape as
    /// [`SymbianVersion::assign`] (different constants, so class and
    /// firmware strata are decorrelated), honouring the share quotas
    /// up to rounding. Consumes no RNG and ignores the seed.
    pub fn assign(&self, id: u32, fleet: u32) -> DeviceClass {
        let n = fleet.max(1) as u64;
        let slot = ((id as u64 * 17 + 5) % n) as f64 + 0.5;
        let pos = slot / n as f64;
        let mut acc = 0.0;
        for &(class, share) in &self.shares {
            acc += share;
            if pos < acc {
                return class;
            }
        }
        self.shares
            .last()
            .map(|&(c, _)| c)
            .unwrap_or(DeviceClass::Smartphone)
    }

    /// The full device profile of phone `id`: its class plus the
    /// firmware stratum [`SymbianVersion::assign`] gives it.
    pub fn profile(&self, id: u32, fleet: u32) -> DeviceProfile {
        DeviceProfile {
            class: self.assign(id, fleet),
            firmware: SymbianVersion::assign(id, fleet),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_homogeneous_and_bitwise_neutral() {
        let comp = FleetComposition::default();
        assert!(comp.is_default());
        assert_eq!(comp.spec_string(), "default");
        let base = CalibrationParams::default();
        for id in 0..100 {
            assert_eq!(comp.assign(id, 100), DeviceClass::Smartphone);
        }
        let profile = comp.profile(3, 100);
        assert_eq!(profile.scale_params(&base), base);
        let rates = crate::corruption::CorruptionProfile::Worst.rates();
        assert_eq!(profile.scale_corruption(rates), rates);
    }

    #[test]
    fn mixed_assignment_respects_quotas() {
        let comp = FleetComposition::mixed();
        let fleet = 250;
        let mut counts = std::collections::BTreeMap::new();
        for id in 0..fleet {
            *counts.entry(comp.assign(id, fleet)).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 3, "all classes present: {counts:?}");
        for &(class, share) in comp.shares() {
            let expected = share * fleet as f64;
            let got = counts[&class] as f64;
            assert!(
                (got - expected).abs() <= 2.0,
                "{class}: got {got}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn assignment_is_deterministic_and_decorrelated_from_firmware() {
        let comp = FleetComposition::mixed();
        for fleet in [1u32, 2, 5, 25, 250] {
            for id in 0..fleet {
                assert_eq!(comp.assign(id, fleet), comp.assign(id, fleet));
            }
        }
        // The class permutation must not shadow the firmware one:
        // within the majority firmware stratum, several classes occur.
        let fleet = 250;
        let mut v80_classes = std::collections::BTreeSet::new();
        for id in 0..fleet {
            if SymbianVersion::assign(id, fleet) == SymbianVersion::V8_0 {
                v80_classes.insert(comp.assign(id, fleet));
            }
        }
        assert!(
            v80_classes.len() >= 2,
            "strata decorrelated: {v80_classes:?}"
        );
    }

    #[test]
    fn parse_round_trips_and_normalizes() {
        let comp = FleetComposition::parse("smartphone:2, communicator:2").unwrap();
        assert_eq!(
            comp.shares(),
            &[
                (DeviceClass::Communicator, 0.5),
                (DeviceClass::Smartphone, 0.5)
            ]
        );
        let spec = comp.spec_string();
        assert_eq!(FleetComposition::parse(&spec).unwrap(), comp);
        assert_eq!(
            FleetComposition::parse("default").unwrap(),
            FleetComposition::default()
        );
        assert_eq!(
            FleetComposition::parse("mixed").unwrap(),
            FleetComposition::mixed()
        );
        // A zero-weight class drops out; a lone survivor owns it all.
        let solo = FleetComposition::parse("communicator:3,entry-level:0").unwrap();
        assert_eq!(solo.shares(), &[(DeviceClass::Communicator, 1.0)]);
    }

    #[test]
    fn parse_errors_are_typed() {
        use FleetSpecError as E;
        assert_eq!(FleetComposition::parse("  "), Err(E::Empty));
        assert_eq!(
            FleetComposition::parse("smartphone"),
            Err(E::NoColon {
                entry: "smartphone".into()
            })
        );
        assert_eq!(
            FleetComposition::parse("tablet:1"),
            Err(E::UnknownClass {
                token: "tablet".into()
            })
        );
        assert_eq!(
            FleetComposition::parse("smartphone:lots"),
            Err(E::BadWeight {
                token: "lots".into()
            })
        );
        assert_eq!(
            FleetComposition::parse("smartphone:-1"),
            Err(E::BadWeight { token: "-1".into() })
        );
        assert_eq!(
            FleetComposition::parse("smartphone:1,smartphone:2"),
            Err(E::DuplicateClass {
                class: DeviceClass::Smartphone
            })
        );
        assert_eq!(
            FleetComposition::parse("smartphone:0,communicator:0"),
            Err(E::ZeroTotal)
        );
    }

    #[test]
    fn class_multipliers_are_ordered_by_segment() {
        let mut last_usage = f64::INFINITY;
        let mut last_fault = f64::INFINITY;
        for class in DeviceClass::ALL {
            assert!(class.usage_multiplier() < last_usage);
            assert!(class.fault_multiplier() <= last_fault);
            last_usage = class.usage_multiplier();
            last_fault = class.fault_multiplier();
        }
        assert_eq!(DeviceClass::Smartphone.usage_multiplier(), 1.0);
        assert_eq!(DeviceClass::Smartphone.fault_multiplier(), 1.0);
        assert_eq!(DeviceClass::Smartphone.corruption_tendency(), 1.0);
    }
}
