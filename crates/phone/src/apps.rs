//! The application catalog.
//!
//! The applications observed running at panic time in the paper's
//! Table 4: the built-in suite (Messages, Telephone, Log, Clock,
//! Contacts, Camera) plus the third-party applications the study's
//! users had installed (TomTom, FExplorer, BT_Browser). Launch
//! weights and session lengths shape the Figure 6 concurrency
//! distribution and the Table 4 application shares.

use serde::{Deserialize, Serialize};

/// A catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Application name as it appears in the running-apps list.
    pub name: &'static str,
    /// Relative launch frequency.
    pub launch_weight: f64,
    /// Median session duration, seconds.
    pub session_median_secs: f64,
    /// Log-normal sigma of the session duration.
    pub session_sigma: f64,
}

/// The catalog, ordered roughly by the paper's Table 4 prominence.
pub const CATALOG: [AppSpec; 9] = [
    AppSpec {
        name: "Messages",
        launch_weight: 26.0,
        session_median_secs: 90.0,
        session_sigma: 0.8,
    },
    AppSpec {
        name: "Log",
        launch_weight: 18.0,
        session_median_secs: 45.0,
        session_sigma: 0.7,
    },
    AppSpec {
        name: "Telephone",
        launch_weight: 14.0,
        session_median_secs: 60.0,
        session_sigma: 0.8,
    },
    AppSpec {
        name: "Camera",
        launch_weight: 12.0,
        session_median_secs: 120.0,
        session_sigma: 0.9,
    },
    AppSpec {
        name: "Clock",
        launch_weight: 10.0,
        session_median_secs: 30.0,
        session_sigma: 0.6,
    },
    AppSpec {
        name: "Contacts",
        launch_weight: 9.0,
        session_median_secs: 40.0,
        session_sigma: 0.7,
    },
    AppSpec {
        name: "TomTom",
        launch_weight: 5.0,
        session_median_secs: 900.0,
        session_sigma: 0.8,
    },
    AppSpec {
        name: "FExplorer",
        launch_weight: 3.0,
        session_median_secs: 150.0,
        session_sigma: 0.8,
    },
    AppSpec {
        name: "BT_Browser",
        launch_weight: 3.0,
        session_median_secs: 200.0,
        session_sigma: 0.9,
    },
];

/// Looks up an app by name.
pub fn by_name(name: &str) -> Option<&'static AppSpec> {
    CATALOG.iter().find(|a| a.name == name)
}

/// The launch-weight vector, aligned with [`CATALOG`] order.
pub fn launch_weights() -> Vec<f64> {
    CATALOG.iter().map(|a| a.launch_weight).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_unique() {
        let mut names: Vec<&str> = CATALOG.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CATALOG.len());
    }

    #[test]
    fn messages_is_most_launched() {
        let max = CATALOG
            .iter()
            .max_by(|a, b| a.launch_weight.partial_cmp(&b.launch_weight).unwrap())
            .unwrap();
        assert_eq!(max.name, "Messages");
    }

    #[test]
    fn lookup() {
        assert!(by_name("Camera").is_some());
        assert!(by_name("Nope").is_none());
    }

    #[test]
    fn weights_positive_and_aligned() {
        let w = launch_weights();
        assert_eq!(w.len(), CATALOG.len());
        assert!(w.iter().all(|&x| x > 0.0));
    }
}
