//! Per-phone user behaviour profiles.
//!
//! The study's phones belonged to students, researchers and professors
//! in Italy and the USA under normal use; behaviour varies per person
//! but is stable per phone. A [`UserProfile`] is sampled once per
//! phone from the calibration parameters and then drives the daily
//! schedule: waking hours, nightly power-off habits, call/message/app
//! volumes and the occasional deliberate reboot.

use serde::{Deserialize, Serialize};

use symfail_sim_core::{SimDuration, SimRng};

use crate::calibration::CalibrationParams;

/// Which deployment site a phone belongs to (the study ran in Italy
/// and the USA; the site only affects labelling, not behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Site {
    /// Università di Napoli Federico II.
    Italy,
    /// University of Illinois at Urbana-Champaign.
    Usa,
}

/// The per-phone behaviour profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Deployment site.
    pub site: Site,
    /// Whether the user powers the phone off at night.
    pub nightly_shutdown: bool,
    /// Wake time as seconds after midnight.
    pub wake_secs: u64,
    /// Sleep time as seconds after midnight.
    pub sleep_secs: u64,
    /// Mean voice calls per day for this user.
    pub calls_per_day: f64,
    /// Mean messages per day.
    pub messages_per_day: f64,
    /// Mean app sessions per day.
    pub app_sessions_per_day: f64,
    /// Median call duration in seconds.
    pub call_median_secs: f64,
}

impl UserProfile {
    /// Samples a profile for one phone.
    pub fn sample(params: &CalibrationParams, rng: &mut SimRng) -> Self {
        let nightly = rng.chance(params.nightly_shutdown_fraction);
        Self::sample_with_nightly(params, rng, nightly)
    }

    /// Samples a profile with the nightly-shutdown habit fixed by the
    /// caller. The fleet campaign stratifies this trait across phones
    /// (exactly ⌈fraction · fleet⌉ nightly users) so that the fleet's
    /// shutdown-event total does not swing on a binomial draw — the
    /// paper reports one concrete fleet, not an ensemble.
    pub fn sample_with_nightly(
        params: &CalibrationParams,
        rng: &mut SimRng,
        nightly_shutdown: bool,
    ) -> Self {
        let site = if rng.chance(0.5) {
            Site::Italy
        } else {
            Site::Usa
        };
        // Wake 06:30–08:30, sleep 22:00–00:00.
        let wake_secs = 6 * 3600 + 1800 + (rng.uniform() * 7200.0) as u64;
        let sleep_secs = 22 * 3600 + (rng.uniform() * 7200.0) as u64;
        // Per-user volume multipliers around the fleet means.
        let vol = |mean: f64, rng: &mut SimRng| (mean * rng.lognormal(1.0, 0.35)).max(0.3);
        Self {
            site,
            nightly_shutdown,
            wake_secs,
            sleep_secs: sleep_secs.min(24 * 3600 - 1),
            calls_per_day: vol(params.calls_per_day, rng),
            messages_per_day: vol(params.messages_per_day, rng),
            app_sessions_per_day: vol(params.app_sessions_per_day, rng),
            call_median_secs: 90.0 * rng.lognormal(1.0, 0.3),
        }
    }

    /// Waking span of the day.
    pub fn waking_span(&self) -> SimDuration {
        SimDuration::from_secs(self.sleep_secs.saturating_sub(self.wake_secs))
    }

    /// Night span (sleep to next wake).
    pub fn night_span(&self) -> SimDuration {
        SimDuration::from_secs(24 * 3600 - self.sleep_secs + self.wake_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> UserProfile {
        let params = CalibrationParams::default();
        let mut rng = SimRng::seed_from(seed);
        UserProfile::sample(&params, &mut rng)
    }

    #[test]
    fn waking_hours_are_plausible() {
        for seed in 0..50 {
            let p = sample(seed);
            assert!(p.wake_secs >= 6 * 3600 && p.wake_secs <= 9 * 3600);
            assert!(p.sleep_secs >= 22 * 3600 && p.sleep_secs < 24 * 3600);
            let span = p.waking_span();
            assert!(span >= SimDuration::from_hours(13));
            assert!(span <= SimDuration::from_hours(18));
            let night = p.night_span();
            assert!(night >= SimDuration::from_hours(6));
            assert!(night <= SimDuration::from_hours(11));
        }
    }

    #[test]
    fn volumes_positive() {
        for seed in 0..50 {
            let p = sample(seed);
            assert!(p.calls_per_day > 0.0);
            assert!(p.messages_per_day > 0.0);
            assert!(p.app_sessions_per_day > 0.0);
            assert!(p.call_median_secs > 0.0);
        }
    }

    #[test]
    fn nightly_fraction_roughly_matches() {
        let n = 1000;
        let nightly = (0..n).filter(|&s| sample(s).nightly_shutdown).count();
        let frac = nightly as f64 / n as f64;
        assert!(
            (frac - 0.20).abs() < 0.05,
            "nightly fraction {frac} far from configured 0.20"
        );
    }

    #[test]
    fn deterministic_for_equal_seed() {
        assert_eq!(sample(7), sample(7));
    }
}
