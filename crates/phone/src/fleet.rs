//! The fleet campaign: 25 phones over 14 months.
//!
//! Phones enroll staggered over the first months (the deployment
//! started in September 2005 and grew), and some drop out before the
//! end (reflashed firmware, replaced devices, departing participants)
//! — this is what makes the fleet's total powered-on observation time
//! land near the paper's ≈115 k phone-hours rather than the naive
//! 25 × 14 months.
//!
//! Phones are fully independent (each owns a forked RNG stream), so
//! the campaign can run them on worker threads without perturbing
//! determinism: the harvest is identical to the sequential run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use symfail_core::analysis::checkpoint::{fnv1a64, CheckpointError, ShardTopology};
use symfail_core::analysis::dataset::{FleetDataset, ParseScratch, PhoneDataset};
use symfail_core::analysis::mtbf::MtbfAnalysis;
use symfail_core::analysis::passes::{
    DeviceLabels, FoldShard, MergeStats, PassRegistry, PhoneLens, StreamMerger,
};
use symfail_core::analysis::report::{AnalysisConfig, StudyReport};
use symfail_core::flashfs::FlashFs;
use symfail_core::logger::{UserReportChannel, UserReportKind};
use symfail_sim_core::{SimRng, SimTime};

use crate::calibration::CalibrationParams;
use crate::composition::{DeviceClass, FleetComposition};
use crate::corruption::{CorruptionModel, CorruptionProfile, InjectedDefects};
use crate::device::{Phone, PhoneStats};
use crate::firmware::SymbianVersion;
use crate::plan::{BalanceMode, ShardPlan};
use crate::user::UserProfile;

/// The result of running one phone through the campaign.
#[derive(Debug)]
pub struct PhoneHarvest {
    /// The phone's identifier.
    pub phone_id: u32,
    /// First campaign day the phone participated.
    pub enrolled_day: u64,
    /// Day the phone left the study.
    pub retired_day: u64,
    /// The Symbian OS release the phone ran.
    pub firmware: SymbianVersion,
    /// The device class the composition assigned to the phone.
    pub device_class: DeviceClass,
    /// The flash filesystem collected from the phone.
    pub flashfs: FlashFs,
    /// Simulator ground truth (for validation only).
    pub stats: PhoneStats,
    /// Expected-observable defect counts injected into `flashfs` by
    /// the campaign's corruption profile (all zero when disabled).
    pub injected: InjectedDefects,
}

/// Everything worth keeping about a phone once its flash has been
/// parsed and dropped: campaign metadata, ground truth, and the few
/// side-channel payloads (user reports) downstream experiments read
/// straight from flash. This is what lets the fused and streaming
/// pipelines reclaim flash buffers phone by phone.
#[derive(Debug, Clone)]
pub struct PhoneMeta {
    /// The phone's identifier.
    pub phone_id: u32,
    /// First campaign day the phone participated.
    pub enrolled_day: u64,
    /// Day the phone left the study.
    pub retired_day: u64,
    /// The Symbian OS release the phone ran.
    pub firmware: SymbianVersion,
    /// The device class the composition assigned to the phone.
    pub device_class: DeviceClass,
    /// Simulator ground truth (for validation only).
    pub stats: PhoneStats,
    /// Injected-defect counts for the campaign's corruption profile.
    pub injected: InjectedDefects,
    /// Flash bytes the phone's filesystem held before it was dropped.
    pub flash_bytes: u64,
    /// User failure reports parsed out of the flash before the drop.
    pub ureports: Vec<(SimTime, UserReportKind)>,
}

impl PhoneMeta {
    /// Captures the keepable parts of a harvest (parsing the user
    /// report channel now, since the flash is about to go away).
    pub fn from_harvest(h: &PhoneHarvest) -> Self {
        Self {
            phone_id: h.phone_id,
            enrolled_day: h.enrolled_day,
            retired_day: h.retired_day,
            firmware: h.firmware,
            device_class: h.device_class,
            stats: h.stats,
            injected: h.injected,
            flash_bytes: h.flashfs.total_size(),
            ureports: UserReportChannel::parse(&h.flashfs),
        }
    }
}

/// Metadata for every harvest, in the same order — the bridge from the
/// staged (flash-retaining) pipeline to meta-based aggregations.
pub fn harvest_metas(harvest: &[PhoneHarvest]) -> Vec<PhoneMeta> {
    harvest.iter().map(PhoneMeta::from_harvest).collect()
}

/// Options for a checkpointed streaming run
/// ([`FleetCampaign::run_streaming_opts`]).
#[derive(Debug, Clone, Default)]
pub struct StreamingOptions {
    /// Checkpoint file path. Loaded on start when the file exists
    /// (resume), written with an atomic tmp-file + rename at every
    /// boundary and once at the end of the run.
    pub checkpoint: Option<PathBuf>,
    /// Snapshot (and trace) every N absorbed phones; `0` means only
    /// the final flush. Boundaries are counted on the merger's
    /// absorbed prefix, so they land on the same phones for any worker
    /// count.
    pub checkpoint_every: u32,
    /// Stop harvesting after this many phones — the deterministic kill
    /// point of the crash-resume harness. The final flush still runs,
    /// leaving a checkpoint at exactly this phone.
    pub stop_after_phones: Option<u32>,
    /// Record a live MTBFr/MTBS estimate at every boundary (plus one
    /// final entry) into [`StreamingRun::mtbf_trace`].
    pub mtbf_trace: bool,
    /// Merge discipline: sharded per-worker runs (default) or the
    /// serial per-phone oracle path.
    pub merge: MergeMode,
    /// Sharded mode: cap on phones per contiguous run; `0` derives one
    /// from the fleet size and worker count. Runs are additionally cut
    /// at every `checkpoint_every` multiple, so checkpoint boundaries
    /// land on exactly the phones serial mode checkpoints.
    pub run_len: u32,
    /// Reads a monotonically-increasing allocation counter for the
    /// *calling thread* (e.g. a thread-local inside the binary's
    /// counting allocator). Sampled at worker start and end to
    /// attribute worker traffic per worker in
    /// [`WorkerStats::alloc_calls`].
    pub alloc_counter: Option<fn() -> u64>,
    /// Run only shard `index` of `count`: the process simulates and
    /// folds just its contiguous slice of the phone-id space
    /// ([`ShardTopology::interval`]) while per-phone RNG forks stay
    /// identical to a full run — phone `i` depends only on
    /// `(seed, i)`, never on which process simulates it. The written
    /// checkpoint records the topology so `merge-checkpoints` can
    /// stitch N such slices into the whole-fleet report.
    pub shard: Option<ShardSpec>,
    /// How a sharded run cuts the phone-id space: the fixed `i/N`
    /// formula (default) or cost-balanced cuts from the static
    /// estimator / a measured cost vector. Ignored without `shard`.
    pub balance: BalanceMode,
}

/// Which slice of the fleet this process owns: shard `index` of
/// `count` (phone counts come from the campaign, see
/// [`ShardTopology`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This process's shard number, `0 <= index < count`.
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

/// Why a `--shard i/N` argument was rejected: each variant names the
/// offending token and the constraint it violated, so `--shard 4/2`
/// fails with "index 4 must be < count 2" instead of a generic usage
/// line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardSpecError {
    /// The argument has no `/` separator.
    NoSlash {
        /// The whole argument as given.
        input: String,
    },
    /// The part before the `/` is not an unsigned integer.
    BadIndex {
        /// The offending index token.
        token: String,
    },
    /// The part after the `/` is not an unsigned integer.
    BadCount {
        /// The offending count token.
        token: String,
    },
    /// The shard count is zero (`0/0`): a fleet cannot be split into
    /// zero shards.
    ZeroCount,
    /// The index is not below the count (`4/2`, `2/2`).
    IndexOutOfRange {
        /// Parsed shard index.
        index: u32,
        /// Parsed shard count.
        count: u32,
    },
}

impl std::fmt::Display for ShardSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardSpecError::NoSlash { input } => {
                write!(
                    f,
                    "shard spec \"{input}\" is not of the form i/N (e.g. 2/4)"
                )
            }
            ShardSpecError::BadIndex { token } => {
                write!(f, "shard index \"{token}\" is not an unsigned integer")
            }
            ShardSpecError::BadCount { token } => {
                write!(f, "shard count \"{token}\" is not an unsigned integer")
            }
            ShardSpecError::ZeroCount => {
                write!(f, "shard count must be >= 1 (got 0)")
            }
            ShardSpecError::IndexOutOfRange { index, count } => {
                write!(f, "shard index {index} must be < shard count {count}")
            }
        }
    }
}

impl std::error::Error for ShardSpecError {}

impl ShardSpec {
    /// Parses the CLI form `i/N` (e.g. `2/4`), requiring `i < N` and
    /// `N >= 1`. Failures name the offending token and the violated
    /// constraint ([`ShardSpecError`]).
    pub fn parse(s: &str) -> Result<Self, ShardSpecError> {
        let (index, count) = s.split_once('/').ok_or_else(|| ShardSpecError::NoSlash {
            input: s.to_string(),
        })?;
        let index: u32 = index.parse().map_err(|_| ShardSpecError::BadIndex {
            token: index.to_string(),
        })?;
        let count: u32 = count.parse().map_err(|_| ShardSpecError::BadCount {
            token: count.to_string(),
        })?;
        if count == 0 {
            return Err(ShardSpecError::ZeroCount);
        }
        if index >= count {
            return Err(ShardSpecError::IndexOutOfRange { index, count });
        }
        Ok(Self { index, count })
    }

    /// The uniform (`i/N` formula) topology of this shard over a
    /// `fleet_phones`-phone campaign — the [`BalanceMode::Uniform`]
    /// partition. Cost-balanced runs derive their topology from
    /// [`FleetCampaign::shard_plan`] instead.
    pub fn topology(self, fleet_phones: u32) -> ShardTopology {
        ShardTopology::uniform(self.index, self.count, fleet_phones)
    }
}

/// Which merge discipline [`FleetCampaign::run_streaming_opts`] uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MergeMode {
    /// One merger push per phone — the pre-sharding architecture, kept
    /// as the byte-identical oracle for the sharded path.
    Serial,
    /// Each worker folds a contiguous run of phones into a private
    /// [`FoldShard`] and hands the whole shard to the merger: one lock
    /// acquisition per run instead of per phone.
    #[default]
    Sharded,
}

impl MergeMode {
    /// Stable CLI/JSON label.
    pub fn as_str(self) -> &'static str {
        match self {
            MergeMode::Serial => "serial",
            MergeMode::Sharded => "sharded",
        }
    }
}

/// Per-worker counters from a streaming run, for throughput
/// diagnosis without a profiler.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Phones this worker simulated and parsed.
    pub phones: u32,
    /// Seconds inside flash parsing on this worker.
    pub parse_seconds: f64,
    /// Wall seconds spent acquiring and feeding the shared merger
    /// (lock wait + absorb).
    pub merge_wait_seconds: f64,
    /// Allocator calls attributed to this worker thread, when
    /// [`StreamingOptions::alloc_counter`] was supplied.
    pub alloc_calls: Option<u64>,
}

/// Cuts `[start, stop)` into contiguous runs with boundaries at every
/// multiple of `every` and of `run_len` (both anchored at phone 0, so
/// the partition depends only on the cut grid — never on `start`,
/// worker count, or resume point), plus one final cut at `stop`.
/// Anchoring at zero is what makes a resumed run checkpoint on exactly
/// the same phones as an uninterrupted one.
fn plan_runs(start: u32, stop: u32, every: u32, run_len: u32) -> Vec<(u32, u32)> {
    // Next grid line strictly above `id`; no cut when the grid is 0.
    let cut = |id: u32, grid: u32| match id.checked_div(grid) {
        Some(q) => q.saturating_add(1).saturating_mul(grid),
        None => u32::MAX,
    };
    let mut runs = Vec::new();
    let mut id = start;
    while id < stop {
        let next = stop.min(cut(id, every)).min(cut(id, run_len));
        runs.push((id, next));
        id = next;
    }
    runs
}

/// The checkpoint-boundary observer shared by both merge modes: called
/// by the merger after every absorbed phone (serial) or run (sharded).
/// Sharded runs are cut at `checkpoint_every` multiples, so the
/// boundary test fires on exactly the same absorbed counts either way.
fn on_boundary(
    m: &StreamMerger<'_>,
    opts: &StreamingOptions,
    fingerprint: u64,
    composition: &str,
    topology: ShardTopology,
    trace: &mut Vec<(u32, MtbfAnalysis)>,
    write_error: &mut Option<CheckpointError>,
) {
    let absorbed = m.absorbed();
    if opts.checkpoint_every == 0 || !absorbed.is_multiple_of(opts.checkpoint_every) {
        return;
    }
    if opts.mtbf_trace {
        if let Some(est) = m.mtbf_estimate() {
            trace.push((absorbed, est));
        }
    }
    if write_error.is_none() {
        if let Some(path) = &opts.checkpoint {
            if let Err(e) = write_atomic(path, &m.snapshot(fingerprint, composition, topology)) {
                *write_error = Some(e);
            }
        }
    }
}

/// What each streaming worker thread returns: `(meta, parse seconds)`
/// per phone it handled, plus its own counters.
type WorkerYield = (Vec<(PhoneMeta, f64)>, WorkerStats);

/// Joins a streaming worker pool, splitting per-phone results from
/// per-worker stats (one [`WorkerStats`] entry per spawned worker, in
/// spawn order).
fn join_workers(
    handles: Vec<std::thread::ScopedJoinHandle<'_, WorkerYield>>,
) -> (Vec<(PhoneMeta, f64)>, Vec<WorkerStats>) {
    let mut runs = Vec::new();
    let mut stats = Vec::new();
    for h in handles {
        let (out, ws) = h.join().expect("streaming worker panicked");
        runs.extend(out);
        stats.push(ws);
    }
    (runs, stats)
}

/// Writes `bytes` to `path` atomically (tmp file + rename), so a crash
/// mid-write can never leave a torn checkpoint behind.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))
}

/// A configured fleet campaign.
#[derive(Debug, Clone)]
pub struct FleetCampaign {
    seed: u64,
    params: CalibrationParams,
    corruption: CorruptionProfile,
    composition: FleetComposition,
}

impl FleetCampaign {
    /// Creates a campaign with a root seed and calibration parameters.
    pub fn new(seed: u64, params: CalibrationParams) -> Self {
        Self {
            seed,
            params,
            corruption: CorruptionProfile::None,
            composition: FleetComposition::default(),
        }
    }

    /// Sets the fleet composition (device-class mix). The default is
    /// the homogeneous pre-composition fleet; class assignment is a
    /// pure function of the phone id, so any worker count, shard
    /// layout or resume point sees the same per-phone classes.
    pub fn with_fleet(mut self, composition: FleetComposition) -> Self {
        self.composition = composition;
        self
    }

    /// The fleet composition in effect.
    pub fn composition(&self) -> &FleetComposition {
        &self.composition
    }

    /// Enables flash-log corruption injection on every harvested
    /// phone. Each phone's damage is drawn from its own fork of the
    /// campaign seed (`fork("corruption", id)`), so the parallel
    /// harvest stays byte-identical for any worker count.
    pub fn with_corruption(mut self, profile: CorruptionProfile) -> Self {
        self.corruption = profile;
        self
    }

    /// The corruption profile in effect.
    pub fn corruption(&self) -> CorruptionProfile {
        self.corruption
    }

    /// The calibration parameters in use.
    pub fn params(&self) -> &CalibrationParams {
        &self.params
    }

    /// A stable fingerprint of the campaign's identity — seed, every
    /// calibration parameter, the corruption profile, and the fleet
    /// composition — stored in checkpoints so a snapshot of one
    /// campaign can never silently resume another.
    pub fn fingerprint(&self) -> u64 {
        let identity = format!(
            "{}|{:?}|{}|{}",
            self.seed,
            self.params,
            self.corruption.as_str(),
            self.composition.spec_string()
        );
        fnv1a64(identity.as_bytes())
    }

    /// Enrollment/retirement window for one phone: stratified over the
    /// fleet (phone *i* enrolls in the *i*-th slice of the enrollment
    /// window, and drops out in a permuted slice of the attrition
    /// window) with per-phone jitter. Stratification keeps the fleet's
    /// total observation time stable across seeds — the paper reports
    /// one concrete fleet, not an ensemble — while each phone's exact
    /// dates remain random.
    fn window(&self, id: u32, rng: &mut SimRng) -> (u64, u64) {
        let p = &self.params;
        let n = p.phones.max(1) as u64;
        let strat = |spread: u64, slot: u64, rng: &mut SimRng| {
            if spread == 0 {
                return 0;
            }
            let slice = (spread / n).max(1);
            (slot * spread / n + rng.next_u64() % slice).min(spread)
        };
        let enrolled = strat(p.enrollment_spread_days as u64, id as u64, rng);
        // A fixed coprime permutation decorrelates the dropout slice
        // from the enrollment slice.
        let perm = (id as u64 * 7 + 3) % n;
        let dropout = strat(p.attrition_spread_days as u64, perm, rng);
        let retired = (p.campaign_days as u64).saturating_sub(dropout);
        (enrolled, retired.max(enrolled + 1))
    }

    /// Whether phone `id` belongs to the stratified nightly-shutdown
    /// quota (⌈fraction · fleet⌉ phones, spread by a fixed coprime
    /// permutation).
    fn is_nightly(&self, id: u32) -> bool {
        let n = self.params.phones.max(1) as u64;
        let perm = (id as u64 * 11 + 5) % n;
        (((perm as f64) + 0.5) / (n as f64)) < self.params.nightly_shutdown_fraction
    }

    /// The deterministic per-phone prologue shared by the simulator
    /// and the cost estimator: forks the phone's RNG stream, draws its
    /// enrollment window, scales the calibration through the phone's
    /// device class, and samples its behaviour profile from the scaled
    /// parameters. Keeping one code path means the estimator prices
    /// exactly the phone the simulator will run — per-class usage
    /// multipliers included — so the two cannot drift. For the default
    /// composition the scaling is a bitwise no-op and the profile
    /// draws are unchanged.
    fn phone_setup(&self, id: u32) -> (SimRng, (u64, u64), UserProfile, CalibrationParams) {
        let mut rng = SimRng::seed_from(self.seed).fork("phone", id as u64);
        let window = self.window(id, &mut rng);
        let params = self
            .composition
            .profile(id, self.params.phones)
            .scale_params(&self.params);
        let profile = UserProfile::sample_with_nightly(&params, &mut rng, self.is_nightly(id));
        (rng, window, profile, params)
    }

    /// The device labels (class + firmware) the analysis layer tags
    /// phone `id`'s folds with — what the grouped contingency
    /// accumulators and the firmware pass slice on.
    pub fn device_labels(&self, id: u32) -> DeviceLabels {
        let device = self.composition.profile(id, self.params.phones);
        DeviceLabels {
            device_class: device.class.as_str(),
            firmware: device.firmware.as_str(),
        }
    }

    /// Static per-phone cost estimate, in expected log lines — the
    /// `--balance static` input. Cost concentrates exactly where the
    /// paper found failures concentrating: a handful of phones
    /// dominate. The model prices what the pipeline actually pays for:
    /// parse time is linear in log lines, and a phone writes one
    /// heartbeat per period over its powered span plus a few lines per
    /// user event, for every active day of its enrollment window.
    /// Derived from the same [`Self::phone_setup`] draw the simulator
    /// uses, so the estimate tracks each phone's true window and
    /// volumes without simulating anything.
    pub fn estimate_phone_costs(&self) -> Vec<f64> {
        (0..self.params.phones)
            .map(|id| {
                let (_rng, (enrolled, retired), profile, _params) = self.phone_setup(id);
                let days = (retired - enrolled) as f64;
                let powered_secs = if profile.nightly_shutdown {
                    profile.sleep_secs.saturating_sub(profile.wake_secs)
                } else {
                    24 * 3600
                };
                let heartbeats =
                    powered_secs as f64 / self.params.heartbeat_period_secs.max(1) as f64;
                // Each user event (call/message/app session) costs a
                // few log lines — boundary records plus occasional
                // episode traffic — weighed against one heartbeat
                // line each.
                let events =
                    profile.calls_per_day + profile.messages_per_day + profile.app_sessions_per_day;
                days * (heartbeats + 2.0 * events)
            })
            .collect()
    }

    /// Plans the shard cut table for a `count`-process run under
    /// `mode`: the fixed `i/N` formula for [`BalanceMode::Uniform`]
    /// (costed so the predicted imbalance is visible), balanced cuts
    /// from [`Self::estimate_phone_costs`] for
    /// [`BalanceMode::Static`], or from the supplied per-phone seconds
    /// for [`BalanceMode::Measured`] (which must hold exactly one
    /// entry per phone).
    pub fn shard_plan(&self, count: u32, mode: &BalanceMode) -> ShardPlan {
        match mode {
            BalanceMode::Uniform => ShardPlan::uniform(&self.estimate_phone_costs(), count),
            BalanceMode::Static => ShardPlan::from_costs(&self.estimate_phone_costs(), count),
            BalanceMode::Measured(costs) => {
                assert_eq!(
                    costs.len(),
                    self.params.phones as usize,
                    "measured cost vector must hold one entry per phone"
                );
                ShardPlan::from_costs(costs, count)
            }
        }
    }

    fn run_phone(&self, id: u32) -> PhoneHarvest {
        let (rng, (enrolled_day, retired_day), profile, params) = self.phone_setup(id);
        let device = self.composition.profile(id, self.params.phones);
        let mut phone = Phone::with_profile(id, params, profile, rng.fork("device", 0));
        phone.set_firmware(device.firmware);
        for day in enrolled_day..retired_day {
            phone.simulate_day(day);
        }
        let stats = phone.stats();
        let mut flashfs = phone.into_flashfs();
        let injected = if self.corruption == CorruptionProfile::None {
            InjectedDefects::default()
        } else {
            let mut crng = SimRng::seed_from(self.seed).fork("corruption", id as u64);
            let rates = device.scale_corruption(self.corruption.rates());
            CorruptionModel::new(rates).inject(&mut flashfs, &mut crng)
        };
        PhoneHarvest {
            phone_id: id,
            enrolled_day,
            retired_day,
            firmware: device.firmware,
            device_class: device.class,
            flashfs,
            stats,
            injected,
        }
    }

    /// Runs exactly one phone of this campaign — the single-phone
    /// scoped entry point the signature-repro machinery uses to
    /// re-simulate an individual fleet member. Identical to the
    /// phone's harvest under any engine, worker count or shard layout
    /// (per-phone RNG forks are independent by construction).
    pub fn run_single(&self, id: u32) -> PhoneHarvest {
        assert!(
            id < self.params.phones,
            "phone {id} outside the {}-phone fleet",
            self.params.phones
        );
        self.run_phone(id)
    }

    /// Runs the contiguous `[lo, hi)` slice of the fleet sequentially
    /// — the same interval a `--shard` process simulates, exposed for
    /// scoped re-simulation without the streaming driver.
    pub fn run_interval(&self, lo: u32, hi: u32) -> Vec<PhoneHarvest> {
        assert!(
            lo <= hi && hi <= self.params.phones,
            "interval [{lo}, {hi}) outside the {}-phone fleet",
            self.params.phones
        );
        (lo..hi).map(|id| self.run_phone(id)).collect()
    }

    /// Runs every phone sequentially. Deterministic in the seed.
    pub fn run(&self) -> Vec<PhoneHarvest> {
        (0..self.params.phones)
            .map(|id| self.run_phone(id))
            .collect()
    }

    /// Runs phones across `workers` threads with work stealing: a
    /// shared atomic counter hands out the next phone id to whichever
    /// worker finishes first, so stragglers (late retirees, chatty
    /// profiles) never serialize behind a static chunk boundary. The
    /// harvest is identical to [`Self::run`] — phones own forked,
    /// independent RNG streams, so the schedule cannot influence any
    /// phone's bytes, and the result is sorted by phone id.
    pub fn run_parallel(&self, workers: usize) -> Vec<PhoneHarvest> {
        let phones = self.params.phones as usize;
        if phones == 0 {
            return Vec::new();
        }
        let workers = workers.clamp(1, phones);
        if workers == 1 {
            return self.run();
        }
        let next = AtomicUsize::new(0);
        let mut harvests: Vec<PhoneHarvest> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let id = next.fetch_add(1, Ordering::Relaxed);
                            if id >= phones {
                                break;
                            }
                            out.push(self.run_phone(id as u32));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("phone worker panicked"))
                .collect()
        });
        harvests.sort_unstable_by_key(|h| h.phone_id);
        harvests
    }

    /// Runs the campaign with the campaign→parse barrier removed: each
    /// work-stealing worker parses a phone's flash immediately after
    /// simulating it, so simulation and parsing interleave across the
    /// pool instead of the whole fleet simulating before the first
    /// byte is parsed.
    ///
    /// Equivalence: phones own forked RNG streams and parsing is a
    /// pure function of each phone's flash bytes, so the harvests are
    /// byte-identical — and the datasets value-identical — to the
    /// staged `run_parallel` + `FleetDataset::from_flash_parallel`
    /// path for any worker count. The intern-table merge inside
    /// [`FleetDataset::from_phones`] happens after sorting by phone
    /// id, so fleet name ids are schedule-independent too.
    pub fn run_fused(&self, workers: usize) -> FusedRun {
        let phones = self.params.phones as usize;
        if phones == 0 {
            return FusedRun {
                metas: Vec::new(),
                dataset: FleetDataset::default(),
                parse_cpu_seconds: 0.0,
                parse_bytes: 0,
                reclaimed_flash_bytes: 0,
            };
        }
        let workers = workers.clamp(1, phones);
        let next = AtomicUsize::new(0);
        let mut runs: Vec<(PhoneMeta, PhoneDataset, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let id = next.fetch_add(1, Ordering::Relaxed);
                            if id >= phones {
                                break;
                            }
                            let harvest = self.run_phone(id as u32);
                            let start = Instant::now();
                            let ds = PhoneDataset::from_flashfs(id as u32, &harvest.flashfs);
                            let secs = start.elapsed().as_secs_f64();
                            let meta = PhoneMeta::from_harvest(&harvest);
                            // The harvest (and its flash buffers) dies
                            // here: the worker holds at most one
                            // phone's flash at a time.
                            drop(harvest);
                            out.push((meta, ds, secs));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("fused worker panicked"))
                .collect()
        });
        runs.sort_unstable_by_key(|(m, _, _)| m.phone_id);
        let mut metas = Vec::with_capacity(runs.len());
        let mut datasets = Vec::with_capacity(runs.len());
        let mut parse_cpu_seconds = 0.0;
        for (m, ds, secs) in runs {
            metas.push(m);
            datasets.push(ds);
            parse_cpu_seconds += secs;
        }
        let parse_bytes = metas.iter().map(|m| m.flash_bytes).sum();
        FusedRun {
            metas,
            dataset: FleetDataset::from_phones(datasets),
            parse_cpu_seconds,
            parse_bytes,
            reclaimed_flash_bytes: parse_bytes,
        }
    }

    /// The fully-streamed pipeline: each worker simulates a phone,
    /// parses its flash, folds every registered analysis pass over the
    /// dataset, then drops **both** the flash and the dataset before
    /// stealing the next phone. Folds drain into a shared
    /// [`StreamMerger`] that absorbs them strictly in phone-id order,
    /// so the report is byte-identical to
    /// [`StudyReport::analyze`] over the batch dataset for any worker
    /// count — while peak memory stays bounded by
    /// `workers × per-phone state` plus the folded summaries instead
    /// of the whole fleet.
    pub fn run_streaming(
        &self,
        workers: usize,
        config: AnalysisConfig,
        registry: &PassRegistry,
    ) -> StreamingRun {
        self.run_streaming_opts(workers, config, registry, &StreamingOptions::default())
            .expect("streaming run without a checkpoint path cannot fail")
    }

    /// [`Self::run_streaming`] with checkpoint/resume support.
    ///
    /// When `opts.checkpoint` names an existing file, the merger is
    /// rebuilt from it (after validating version, checksum, registry,
    /// config and campaign fingerprint) and workers start at the
    /// checkpointed phone instead of 0 — so an interrupted campaign
    /// re-simulates only the un-absorbed suffix. Snapshots are written
    /// atomically at every `checkpoint_every` absorb boundary and once
    /// at the end of the run; since absorption happens strictly in
    /// phone-id order, boundary phones — and therefore checkpoint
    /// bytes and the MTBF trace — are identical for any worker count.
    /// The final report stays byte-identical to an uninterrupted
    /// (and to a batch) run.
    ///
    /// A resumed run's `metas`/parse counters cover only the phones it
    /// simulated itself (the resumed suffix); the report covers the
    /// whole fleet.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] when an existing checkpoint is invalid or
    /// mismatched, or when a snapshot cannot be written. The campaign
    /// itself cannot fail.
    pub fn run_streaming_opts(
        &self,
        workers: usize,
        config: AnalysisConfig,
        registry: &PassRegistry,
        opts: &StreamingOptions,
    ) -> Result<StreamingRun, CheckpointError> {
        let phones = self.params.phones;
        let fingerprint = self.fingerprint();
        let composition = self.composition.spec_string();
        let composition = composition.as_str();
        // Sharded runs derive their interval from the shard plan —
        // the uniform i/N formula or cost-balanced cuts, depending on
        // opts.balance. Every process of one run must use the same
        // balance mode (and cost vector): the cuts must agree for the
        // checkpoints to merge.
        let plan = opts
            .shard
            .map(|spec| self.shard_plan(spec.count, &opts.balance));
        let topology = match (&plan, opts.shard) {
            (Some(plan), Some(spec)) => plan.topology(spec.index),
            _ => ShardTopology::solo(phones),
        };
        // The slice of the id space this process owns — the whole
        // fleet for a solo run.
        let (lo, hi) = topology.interval();
        let mut merger = StreamMerger::new_at(registry, config, lo);
        let mut resumed_from = None;
        if let Some(path) = &opts.checkpoint {
            if path.exists() {
                let bytes = std::fs::read(path)
                    .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
                merger = StreamMerger::resume(
                    registry,
                    config,
                    fingerprint,
                    composition,
                    topology,
                    &bytes,
                )?;
                resumed_from = Some(merger.absorbed());
            }
        }
        let start = merger.absorbed().clamp(lo, hi);
        let stop = opts.stop_after_phones.unwrap_or(hi).min(hi);
        let needs_coalesce = registry.needs_coalesce();

        struct MergeState<'r> {
            merger: StreamMerger<'r>,
            trace: Vec<(u32, MtbfAnalysis)>,
            write_error: Option<CheckpointError>,
        }
        let state = Mutex::new(MergeState {
            merger,
            trace: Vec::new(),
            write_error: None,
        });

        let (mut runs, worker_stats): (Vec<(PhoneMeta, f64)>, Vec<WorkerStats>) = if start < stop {
            let workers = workers.clamp(1, (stop - start) as usize);
            match opts.merge {
                MergeMode::Serial => {
                    let next = AtomicUsize::new(start as usize);
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..workers)
                            .map(|_| {
                                let next = &next;
                                let state = &state;
                                scope.spawn(move || {
                                    let mut out = Vec::new();
                                    let mut ws = WorkerStats::default();
                                    let allocs0 = opts.alloc_counter.map(|f| f());
                                    let mut scratch = ParseScratch::default();
                                    loop {
                                        let id = next.fetch_add(1, Ordering::Relaxed);
                                        if id >= stop as usize {
                                            break;
                                        }
                                        let harvest = self.run_phone(id as u32);
                                        let t0 = Instant::now();
                                        let ds = PhoneDataset::from_flashfs_with(
                                            id as u32,
                                            &harvest.flashfs,
                                            &mut scratch,
                                        );
                                        let secs = t0.elapsed().as_secs_f64();
                                        let meta = PhoneMeta::from_harvest(&harvest);
                                        drop(harvest);
                                        let lens = PhoneLens::with_device(
                                            &ds,
                                            config,
                                            needs_coalesce,
                                            self.device_labels(id as u32),
                                        );
                                        let folds = registry.fold_phone(&lens);
                                        drop(lens);
                                        // The dataset's buffers go back
                                        // into the scratch pool here; only
                                        // the folded summaries cross into
                                        // the merger.
                                        ds.recycle(&mut scratch);
                                        let t1 = Instant::now();
                                        let mut guard = state.lock().expect("merger lock");
                                        let MergeState {
                                            merger,
                                            trace,
                                            write_error,
                                        } = &mut *guard;
                                        merger.push_each(folds, |m| {
                                            on_boundary(
                                                m,
                                                opts,
                                                fingerprint,
                                                composition,
                                                topology,
                                                trace,
                                                write_error,
                                            )
                                        });
                                        drop(guard);
                                        ws.merge_wait_seconds += t1.elapsed().as_secs_f64();
                                        ws.parse_seconds += secs;
                                        ws.phones += 1;
                                        out.push((meta, secs));
                                    }
                                    ws.alloc_calls = opts
                                        .alloc_counter
                                        .map(|f| f().saturating_sub(allocs0.unwrap_or(0)));
                                    (out, ws)
                                })
                            })
                            .collect();
                        join_workers(handles)
                    })
                }
                MergeMode::Sharded => {
                    // Without an explicit cap (and no checkpoint grid
                    // to cut on), size runs so each worker sees a few
                    // of them — enough stealing slack to absorb
                    // straggler phones.
                    let run_len = if opts.run_len > 0 || opts.checkpoint_every > 0 {
                        opts.run_len
                    } else {
                        ((stop - start) / (workers as u32 * 8)).clamp(1, 32)
                    };
                    let plan = plan_runs(start, stop, opts.checkpoint_every, run_len);
                    let next = AtomicUsize::new(0);
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..workers)
                            .map(|_| {
                                let next = &next;
                                let state = &state;
                                let plan = &plan;
                                scope.spawn(move || {
                                    let mut out = Vec::new();
                                    let mut ws = WorkerStats::default();
                                    let allocs0 = opts.alloc_counter.map(|f| f());
                                    let mut scratch = ParseScratch::default();
                                    loop {
                                        let ri = next.fetch_add(1, Ordering::Relaxed);
                                        let Some(&(run_start, run_end)) = plan.get(ri) else {
                                            break;
                                        };
                                        let mut shard = FoldShard::new(registry, run_start);
                                        for id in run_start..run_end {
                                            let harvest = self.run_phone(id);
                                            let t0 = Instant::now();
                                            let ds = PhoneDataset::from_flashfs_with(
                                                id,
                                                &harvest.flashfs,
                                                &mut scratch,
                                            );
                                            let secs = t0.elapsed().as_secs_f64();
                                            let meta = PhoneMeta::from_harvest(&harvest);
                                            drop(harvest);
                                            let lens = PhoneLens::with_device(
                                                &ds,
                                                config,
                                                needs_coalesce,
                                                self.device_labels(id),
                                            );
                                            shard.absorb_phone(registry, &lens);
                                            drop(lens);
                                            ds.recycle(&mut scratch);
                                            ws.parse_seconds += secs;
                                            ws.phones += 1;
                                            out.push((meta, secs));
                                        }
                                        // One lock acquisition per run:
                                        // the whole shard crosses at
                                        // once.
                                        let t1 = Instant::now();
                                        let mut guard = state.lock().expect("merger lock");
                                        let MergeState {
                                            merger,
                                            trace,
                                            write_error,
                                        } = &mut *guard;
                                        merger.push_shard_each(shard, |m| {
                                            on_boundary(
                                                m,
                                                opts,
                                                fingerprint,
                                                composition,
                                                topology,
                                                trace,
                                                write_error,
                                            )
                                        });
                                        drop(guard);
                                        ws.merge_wait_seconds += t1.elapsed().as_secs_f64();
                                    }
                                    ws.alloc_calls = opts
                                        .alloc_counter
                                        .map(|f| f().saturating_sub(allocs0.unwrap_or(0)));
                                    (out, ws)
                                })
                            })
                            .collect();
                        join_workers(handles)
                    })
                }
            }
        } else {
            (Vec::new(), Vec::new())
        };

        let mut st = state.into_inner().expect("merger lock");
        if let Some(e) = st.write_error.take() {
            return Err(e);
        }
        // Always flush at the end: a stopped run leaves a checkpoint
        // at exactly `stop` (the kill-point contract), a completed run
        // leaves one that resumes into an immediate finish.
        if let Some(path) = &opts.checkpoint {
            write_atomic(
                path,
                &st.merger.snapshot(fingerprint, composition, topology),
            )?;
        }
        if opts.mtbf_trace {
            let absorbed = st.merger.absorbed();
            if st.trace.last().map(|&(n, _)| n) != Some(absorbed) {
                if let Some(est) = st.merger.mtbf_estimate() {
                    st.trace.push((absorbed, est));
                }
            }
        }
        runs.sort_unstable_by_key(|(m, _)| m.phone_id);
        let mut metas = Vec::with_capacity(runs.len());
        let mut phone_parse_seconds = Vec::with_capacity(runs.len());
        let mut parse_cpu_seconds = 0.0;
        for (m, secs) in runs {
            metas.push(m);
            phone_parse_seconds.push(secs);
            parse_cpu_seconds += secs;
        }
        let parse_bytes = metas.iter().map(|m| m.flash_bytes).sum();
        let merge_stats = st.merger.merge_stats();
        Ok(StreamingRun {
            metas,
            report: st.merger.finish(),
            parse_cpu_seconds,
            phone_parse_seconds,
            parse_bytes,
            reclaimed_flash_bytes: parse_bytes,
            mtbf_trace: st.trace,
            resumed_from,
            worker_stats,
            merge_stats,
            topology,
            plan,
        })
    }
}

/// The result of a fused campaign→parse run
/// ([`FleetCampaign::run_fused`]).
#[derive(Debug)]
pub struct FusedRun {
    /// Per-phone metadata (ground truth, firmware, user reports),
    /// sorted by phone id. Flash buffers are dropped phone by phone
    /// during the run.
    pub metas: Vec<PhoneMeta>,
    /// The fleet dataset parsed from those harvests — value-identical
    /// to `FleetDataset::from_flash_parallel` over the same flashes.
    pub dataset: FleetDataset,
    /// CPU seconds spent inside flash parsing, summed across workers
    /// (wall-clock parse cost is hidden inside the simulation overlap;
    /// this counter is what the timing report can still attribute).
    pub parse_cpu_seconds: f64,
    /// Total flash bytes parsed.
    pub parse_bytes: u64,
    /// Flash bytes freed phone-by-phone instead of being held for the
    /// run's lifetime (equals `parse_bytes`: every flash is dropped).
    pub reclaimed_flash_bytes: u64,
}

/// The result of a fully-streamed campaign→parse→fold run
/// ([`FleetCampaign::run_streaming`]).
#[derive(Debug)]
pub struct StreamingRun {
    /// Per-phone metadata, sorted by phone id.
    pub metas: Vec<PhoneMeta>,
    /// The finished study report, byte-identical to the batch path.
    pub report: StudyReport,
    /// CPU seconds spent inside flash parsing, summed across workers.
    pub parse_cpu_seconds: f64,
    /// Per-phone parse seconds, aligned with `metas` — the measured
    /// cost vector a later `--balance measured` run can plan from.
    pub phone_parse_seconds: Vec<f64>,
    /// Total flash bytes parsed.
    pub parse_bytes: u64,
    /// Flash bytes freed phone-by-phone (equals `parse_bytes`).
    pub reclaimed_flash_bytes: u64,
    /// Live MTBF estimates `(phones_absorbed, estimate)` recorded at
    /// checkpoint boundaries (plus one final entry), strictly
    /// increasing in `phones_absorbed`. Empty unless
    /// [`StreamingOptions::mtbf_trace`] was set.
    pub mtbf_trace: Vec<(u32, MtbfAnalysis)>,
    /// `Some(k)` when the run resumed from a checkpoint holding `k`
    /// absorbed phones; `metas` and the parse counters then cover only
    /// the resumed suffix.
    pub resumed_from: Option<u32>,
    /// One entry per spawned worker (spawn order): phones handled,
    /// parse seconds, merge-wait seconds, and — when the caller wired
    /// an [`StreamingOptions::alloc_counter`] — allocator calls.
    pub worker_stats: Vec<WorkerStats>,
    /// Merger-side counters: shards absorbed and peak pending
    /// buffering (shards / phones / estimated heap bytes).
    pub merge_stats: MergeStats,
    /// The fleet slice this run owned ([`ShardTopology::solo`] when
    /// unsharded).
    pub topology: ShardTopology,
    /// The full cut table the run was planned under — `Some` exactly
    /// when [`StreamingOptions::shard`] was set. Carries every shard's
    /// interval and predicted cost for the timing JSON's
    /// `shard_plan` section.
    pub plan: Option<ShardPlan>,
}

/// Aggregate injected-defect counters across a campaign.
pub fn total_injected(metas: &[PhoneMeta]) -> InjectedDefects {
    let mut total = InjectedDefects::default();
    for m in metas {
        total.merge(&m.injected);
    }
    total
}

/// Aggregate ground-truth counters across a campaign (validation only).
pub fn total_stats(metas: &[PhoneMeta]) -> PhoneStats {
    let mut total = PhoneStats::default();
    for m in metas {
        total.panics += m.stats.panics;
        total.freezes += m.stats.freezes;
        total.self_shutdowns += m.stats.self_shutdowns;
        total.user_shutdowns += m.stats.user_shutdowns;
        total.lowbt_shutdowns += m.stats.lowbt_shutdowns;
        total.calls += m.stats.calls;
        total.messages += m.stats.messages;
        total.output_failures += m.stats.output_failures;
        total.user_reports += m.stats.user_reports;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> CalibrationParams {
        CalibrationParams {
            phones: 3,
            campaign_days: 20,
            enrollment_spread_days: 5,
            attrition_spread_days: 5,
            ..CalibrationParams::default()
        }
    }

    #[test]
    fn plan_runs_partitions_on_the_cut_grid() {
        // Runs partition [start, stop): contiguous, ascending, no holes.
        let assert_partition = |runs: &[(u32, u32)], start: u32, stop: u32| {
            assert_eq!(runs.first().map(|r| r.0), Some(start));
            assert_eq!(runs.last().map(|r| r.1), Some(stop));
            for w in runs.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            for &(a, b) in runs {
                assert!(a < b);
            }
        };

        // No grid at all: one run covering everything.
        assert_eq!(plan_runs(0, 10, 0, 0), vec![(0, 10)]);
        // Pure run_len grid, anchored at phone 0 even when start isn't.
        assert_eq!(plan_runs(3, 10, 0, 4), vec![(3, 4), (4, 8), (8, 10)]);
        // checkpoint_every cuts compose with run_len cuts: a run never
        // straddles a multiple of either.
        let runs = plan_runs(0, 20, 5, 3);
        assert_partition(&runs, 0, 20);
        for &(a, b) in &runs {
            assert!(b % 5 == 0 || b % 3 == 0 || b == 20, "bad cut at {a}..{b}");
            assert!(a / 5 == (b - 1) / 5, "run {a}..{b} straddles a checkpoint");
        }
        // Empty range plans nothing.
        assert!(plan_runs(7, 7, 5, 3).is_empty());
    }

    #[test]
    fn campaign_is_deterministic() {
        let c = FleetCampaign::new(11, tiny_params());
        let a = c.run();
        let b = c.run();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stats, y.stats);
            assert_eq!(x.flashfs.read_bytes("log"), y.flashfs.read_bytes("log"));
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let c = FleetCampaign::new(13, tiny_params());
        let seq = c.run();
        let par = c.run_parallel(3);
        assert_eq!(seq.len(), par.len());
        for (x, y) in seq.iter().zip(&par) {
            assert_eq!(x.phone_id, y.phone_id);
            assert_eq!(x.stats, y.stats);
            assert_eq!(x.flashfs.read_bytes("beats"), y.flashfs.read_bytes("beats"));
        }
    }

    #[test]
    fn corruption_damages_flash_but_not_ground_truth() {
        let params = tiny_params();
        let dirty = FleetCampaign::new(11, params).with_corruption(CorruptionProfile::Worst);
        let clean = FleetCampaign::new(11, params);
        let a = dirty.run();
        let b = clean.run();
        assert!(
            total_injected(&harvest_metas(&a)).total_observable() > 0,
            "worst profile must inject something"
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stats, y.stats, "simulation itself is untouched");
        }
        assert!(
            a.iter().zip(&b).any(|(x, y)| x.flashfs.read_bytes("beats")
                != y.flashfs.read_bytes("beats")
                || x.flashfs.read_bytes("log") != y.flashfs.read_bytes("log")),
            "worst profile must damage at least one file"
        );
    }

    #[test]
    fn corrupted_parallel_equals_sequential() {
        let c = FleetCampaign::new(13, tiny_params()).with_corruption(CorruptionProfile::Moderate);
        let seq = c.run();
        let par = c.run_parallel(3);
        assert_eq!(seq.len(), par.len());
        for (x, y) in seq.iter().zip(&par) {
            assert_eq!(x.phone_id, y.phone_id);
            assert_eq!(x.injected, y.injected);
            assert_eq!(x.flashfs.read_bytes("beats"), y.flashfs.read_bytes("beats"));
            assert_eq!(x.flashfs.read_bytes("log"), y.flashfs.read_bytes("log"));
        }
    }

    #[test]
    fn fused_equals_staged_pipeline() {
        let c = FleetCampaign::new(13, tiny_params()).with_corruption(CorruptionProfile::Worst);
        let staged_harvest = c.run_parallel(3);
        let systems: Vec<(u32, &FlashFs)> = staged_harvest
            .iter()
            .map(|h| (h.phone_id, &h.flashfs))
            .collect();
        let staged = FleetDataset::from_flash_parallel(&systems, 3);
        for workers in [1, 2, 3] {
            let fused = c.run_fused(workers);
            assert_eq!(fused.metas.len(), staged_harvest.len());
            for (x, y) in fused.metas.iter().zip(&staged_harvest) {
                assert_eq!(x.phone_id, y.phone_id);
                assert_eq!(x.stats, y.stats);
                assert_eq!(x.flash_bytes, y.flashfs.total_size());
            }
            assert_eq!(fused.dataset.names(), staged.names());
            assert_eq!(fused.dataset.panic_count(), staged.panic_count());
            for (f, s) in fused.dataset.phones().iter().zip(staged.phones()) {
                assert_eq!(f.panics(), s.panics());
                assert_eq!(f.beats(), s.beats());
                assert_eq!(f.defects(), s.defects());
            }
            assert!(fused.parse_bytes > 0);
            assert_eq!(fused.reclaimed_flash_bytes, fused.parse_bytes);
        }
    }

    #[test]
    fn streaming_report_matches_batch() {
        let c = FleetCampaign::new(13, tiny_params()).with_corruption(CorruptionProfile::Worst);
        let config = AnalysisConfig::default();
        let registry = PassRegistry::all();
        let batch = {
            let fused = c.run_fused(2);
            StudyReport::analyze_with(&fused.dataset, config, &registry)
        };
        for workers in [1, 2, 3] {
            let streamed = c.run_streaming(workers, config, &registry);
            assert_eq!(
                streamed.report.render_all(),
                batch.render_all(),
                "streaming ({workers} workers) must be byte-identical to batch"
            );
            assert_eq!(streamed.metas.len(), 3);
            assert_eq!(streamed.reclaimed_flash_bytes, streamed.parse_bytes);
            assert!(streamed.parse_bytes > 0);
        }
    }

    #[test]
    fn mixed_fleet_is_deterministic_and_classed() {
        let c = FleetCampaign::new(13, tiny_params()).with_fleet(FleetComposition::mixed());
        let a = c.run();
        let b = c.run_parallel(3);
        let mut classes = std::collections::BTreeSet::new();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.device_class, y.device_class);
            assert_eq!(x.stats, y.stats);
            assert_eq!(x.flashfs.read_bytes("log"), y.flashfs.read_bytes("log"));
            classes.insert(x.device_class);
        }
        assert!(
            classes.len() >= 2,
            "mixed fleet has >= 2 classes: {classes:?}"
        );
    }

    #[test]
    fn default_composition_is_the_homogeneous_fleet() {
        let plain = FleetCampaign::new(11, tiny_params());
        let explicit =
            FleetCampaign::new(11, tiny_params()).with_fleet(FleetComposition::default());
        assert_eq!(plain.fingerprint(), explicit.fingerprint());
        for (x, y) in plain.run().iter().zip(&explicit.run()) {
            assert_eq!(x.device_class, DeviceClass::Smartphone);
            assert_eq!(x.stats, y.stats);
            assert_eq!(x.flashfs.read_bytes("log"), y.flashfs.read_bytes("log"));
        }
    }

    #[test]
    fn mixed_fleet_streaming_matches_labeled_batch() {
        let c = FleetCampaign::new(13, tiny_params())
            .with_fleet(FleetComposition::mixed())
            .with_corruption(CorruptionProfile::Worst);
        let config = AnalysisConfig::default();
        let registry = PassRegistry::all();
        let batch = {
            let fused = c.run_fused(2);
            StudyReport::analyze_with_labels(&fused.dataset, config, &registry, |id| {
                c.device_labels(id)
            })
        };
        assert!(
            batch.render_all().contains("device class"),
            "a mixed fleet renders the device-class section"
        );
        for workers in [1, 2, 3] {
            let streamed = c.run_streaming(workers, config, &registry);
            assert_eq!(
                streamed.report.render_all(),
                batch.render_all(),
                "mixed-fleet streaming ({workers} workers) must match labeled batch"
            );
        }
    }

    #[test]
    fn composition_moves_fingerprint_and_per_class_costs() {
        let params = CalibrationParams {
            phones: 30,
            campaign_days: 20,
            enrollment_spread_days: 0,
            attrition_spread_days: 0,
            ..CalibrationParams::default()
        };
        let plain = FleetCampaign::new(11, params);
        let mixed = FleetCampaign::new(11, params).with_fleet(FleetComposition::mixed());
        assert_ne!(plain.fingerprint(), mixed.fingerprint());
        // The static cost estimator prices per-class usage: heavy-use
        // communicators must out-cost entry-level phones on average.
        let costs = mixed.estimate_phone_costs();
        let mean_of = |class: DeviceClass| {
            let picked: Vec<f64> = (0..params.phones)
                .filter(|&id| mixed.composition().assign(id, params.phones) == class)
                .map(|id| costs[id as usize])
                .collect();
            picked.iter().sum::<f64>() / picked.len() as f64
        };
        assert!(
            mean_of(DeviceClass::Communicator) > mean_of(DeviceClass::EntryLevel),
            "class usage multipliers must show up in the cost estimates"
        );
    }

    #[test]
    fn enrollment_windows_within_campaign() {
        let c = FleetCampaign::new(17, tiny_params());
        for h in c.run() {
            assert!(h.enrolled_day < h.retired_day);
            assert!(h.retired_day <= tiny_params().campaign_days as u64);
        }
    }

    #[test]
    fn stats_aggregate() {
        let c = FleetCampaign::new(19, tiny_params());
        let harvest = c.run();
        let total = total_stats(&harvest_metas(&harvest));
        let manual: u64 = harvest.iter().map(|h| h.stats.calls).sum();
        assert_eq!(total.calls, manual);
        assert!(total.calls > 0);
    }
}
