//! One simulated smart phone: OS servers, battery, logger, user
//! behaviour and fault activation, advanced one day at a time.
//!
//! The phone is a small state machine — `On`, `Off(until)` or
//! `Frozen(boot_at)` — driven by a per-day action list (calls,
//! messages, application sessions, shutdowns, fault episodes). While
//! `On`, the embedded failure logger receives heartbeat ticks; a
//! freeze silences the heartbeat without a final event, and a clean
//! shutdown writes one, exactly reproducing the signatures the
//! paper's boot-time check discriminates.

use symfail_core::flashfs::FlashFs;
use symfail_core::logger::{
    FailureLogger, LoggerConfig, PhoneContext, ShutdownKind, UserReportChannel, UserReportKind,
};
use symfail_sim_core::{SimDuration, SimRng, SimTime};
use symfail_symbian::servers::applist::AppArchServer;
use symfail_symbian::servers::logdb::{ActivityKind, LogDbServer};

use crate::apps;
use crate::battery::Battery;
use crate::calibration::{CalibrationParams, EpisodeContext};
use crate::faults::{execute_fault, plan_episode, Escalation};
use crate::firmware::SymbianVersion;
use crate::user::UserProfile;

/// Power state of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PowerState {
    /// Running; heartbeats flow.
    On,
    /// Cleanly shut down until the given instant.
    Off(SimTime),
    /// Frozen; the user will pull the battery and reboot at the given
    /// instant. No heartbeat is written in between.
    Frozen(SimTime),
}

/// Counters the simulator keeps for sanity checks (the *analysis*
/// never reads these — it only sees the flash files).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhoneStats {
    /// Panics raised through the substrate mechanisms.
    pub panics: u64,
    /// Freezes entered (escalated or isolated).
    pub freezes: u64,
    /// Self-shutdowns performed.
    pub self_shutdowns: u64,
    /// Clean user/night reboots.
    pub user_shutdowns: u64,
    /// Low-battery shutdowns.
    pub lowbt_shutdowns: u64,
    /// Voice calls completed.
    pub calls: u64,
    /// Messages handled.
    pub messages: u64,
    /// Output failures experienced (invisible to the base logger).
    pub output_failures: u64,
    /// Output failures the user actually reported.
    pub user_reports: u64,
}

/// A timed action within one simulated day.
#[derive(Debug, Clone)]
enum Action {
    CallStart {
        duration: SimDuration,
        episode: bool,
        episode_offset: SimDuration,
    },
    MessageEvent {
        episode: bool,
        deferred: bool,
    },
    SessionStart {
        app: &'static str,
        duration: SimDuration,
    },
    SessionEnd {
        app: &'static str,
    },
    BackgroundEpisode,
    EpisodeAt(EpisodeContext),
    OutputFailure,
    IsolatedFreeze,
    IsolatedSelfShutdown,
    UserReboot,
    LowBatteryShutdown,
    NightShutdown,
    EndOfDay,
}

/// One simulated phone with its embedded failure logger.
#[derive(Debug)]
pub struct Phone {
    /// Identifier within the fleet.
    pub id: u32,
    /// The behaviour profile of its owner.
    pub profile: UserProfile,
    /// The Symbian OS release the phone runs.
    pub firmware: SymbianVersion,
    params: CalibrationParams,
    rng: SimRng,
    fs: FlashFs,
    logger: FailureLogger,
    apps: AppArchServer,
    logdb: LogDbServer,
    user_reports: UserReportChannel,
    battery: Battery,
    state: PowerState,
    next_beat: SimTime,
    stats: PhoneStats,
    booted_once: bool,
}

impl Phone {
    /// Creates a phone; `rng` must be an independent stream for this
    /// phone.
    pub fn new(id: u32, params: CalibrationParams, mut rng: SimRng) -> Self {
        let profile = UserProfile::sample(&params, &mut rng);
        Self::with_profile(id, params, profile, rng)
    }

    /// Creates a phone with a caller-chosen behaviour profile (the
    /// fleet campaign stratifies traits across phones).
    pub fn with_profile(
        id: u32,
        params: CalibrationParams,
        profile: UserProfile,
        rng: SimRng,
    ) -> Self {
        let logger = FailureLogger::new(LoggerConfig {
            heartbeat_period: SimDuration::from_secs(params.heartbeat_period_secs),
            snapshot_every: 10,
        });
        Self {
            id,
            profile,
            firmware: SymbianVersion::V8_0,
            params,
            rng,
            fs: FlashFs::new(),
            logger,
            apps: AppArchServer::new(),
            logdb: LogDbServer::with_retention(SimDuration::from_days(30)),
            user_reports: UserReportChannel::new(),
            battery: Battery::new(),
            state: PowerState::Off(SimTime::ZERO),
            next_beat: SimTime::ZERO,
            stats: PhoneStats::default(),
            booted_once: false,
        }
    }

    /// Sets the Symbian OS release (older firmware carries more
    /// residual faults; see [`SymbianVersion::fault_multiplier`]).
    pub fn set_firmware(&mut self, firmware: SymbianVersion) {
        self.firmware = firmware;
    }

    /// The harvested flash filesystem (what the study collects).
    pub fn flashfs(&self) -> &FlashFs {
        &self.fs
    }

    /// Consumes the phone and yields its flash filesystem without
    /// copying — harvesting is the phone's end of life.
    pub fn into_flashfs(self) -> FlashFs {
        self.fs
    }

    /// Simulator-internal ground-truth counters.
    pub fn stats(&self) -> PhoneStats {
        self.stats
    }

    fn context(&self, now: SimTime) -> PhoneContext {
        PhoneContext {
            running_apps: self.apps.running(),
            activity: self.logdb.activity_at(now),
            battery_percent: self.battery.percent(),
            battery_low: self.battery.is_low(),
        }
    }

    /// Advances the heartbeat stream (and battery drain) up to `now`.
    fn advance(&mut self, now: SimTime) {
        match self.state {
            PowerState::On => {
                while self.next_beat <= now {
                    let beat_at = self.next_beat;
                    self.battery.drain(
                        SimDuration::from_secs(self.params.heartbeat_period_secs),
                        SimDuration::ZERO,
                    );
                    let ctx = self.context(beat_at);
                    self.logger.on_tick(&mut self.fs, beat_at, &ctx);
                    self.next_beat =
                        beat_at + SimDuration::from_secs(self.params.heartbeat_period_secs);
                }
            }
            PowerState::Off(until) | PowerState::Frozen(until) => {
                if now >= until {
                    self.power_on(until.max(SimTime::ZERO));
                    self.advance(now);
                }
            }
        }
    }

    fn power_on(&mut self, at: SimTime) {
        self.apps.reset();
        let ctx = self.context(at);
        self.logger.on_boot(&mut self.fs, at, &ctx);
        self.state = PowerState::On;
        self.booted_once = true;
        self.next_beat = at + SimDuration::from_secs(self.params.heartbeat_period_secs);
    }

    fn clean_shutdown(&mut self, at: SimTime, kind: ShutdownKind, off_for: SimDuration) {
        if self.state != PowerState::On {
            return;
        }
        self.advance(at);
        if self.state != PowerState::On {
            return;
        }
        self.logger.on_clean_shutdown(&mut self.fs, at, kind);
        self.state = PowerState::Off(at + off_for);
    }

    fn freeze(&mut self, at: SimTime) {
        if self.state != PowerState::On {
            return;
        }
        self.stats.freezes += 1;
        // The user notices, pulls the battery, waits, reboots.
        let notice = SimDuration::from_secs_f64(self.rng.lognormal(180.0, 0.8));
        let off = SimDuration::from_secs_f64(self.rng.lognormal(120.0, 0.7));
        self.state = PowerState::Frozen(at + notice + off);
    }

    fn self_shutdown(&mut self, at: SimTime) {
        if self.state != PowerState::On {
            return;
        }
        self.stats.self_shutdowns += 1;
        let dur = SimDuration::from_secs_f64(self.rng.lognormal(
            self.params.self_shutdown_median_secs,
            self.params.self_shutdown_sigma,
        ));
        self.clean_shutdown(at, ShutdownKind::Reboot, dur);
    }

    /// Runs one fault episode: raises the panic(s) mechanically, lets
    /// the kernel terminate offending applications, then applies the
    /// escalation.
    fn run_episode(&mut self, at: SimTime, context: EpisodeContext) {
        if self.state != PowerState::On {
            return;
        }
        let episode = plan_episode(&self.params, context, &mut self.rng);
        // Make sure some application is in the foreground: faults
        // activate under use.
        let foreground: String = match context {
            EpisodeContext::VoiceCall => "Telephone".to_string(),
            EpisodeContext::Message | EpisodeContext::DeferredMessaging => "Messages".to_string(),
            EpisodeContext::Background => match self.apps.running().first() {
                Some(app) => app.clone(),
                None => {
                    let idx = self.rng.weighted_index(&apps::launch_weights());
                    let app = apps::CATALOG[idx].name;
                    self.apps.notify_started(app);
                    app.to_string()
                }
            },
        };
        let mut t = at;
        let mut offender = foreground;
        let codes: Vec<_> = std::iter::once(episode.primary)
            .chain(episode.cascade.iter().copied())
            .collect();
        for (i, code) in codes.iter().enumerate() {
            self.advance(t);
            if self.state != PowerState::On {
                return;
            }
            let panic = execute_fault(*code, &offender, &mut self.rng);
            let ctx = self.context(t);
            self.logger.on_panic(&mut self.fs, t, &panic, &ctx);
            self.stats.panics += 1;
            // Kernel recovery: terminate the offending application.
            self.apps.notify_exited(&offender);
            // Error propagation: the next panic in the cascade hits
            // another component shortly after.
            if i + 1 < codes.len() {
                t += SimDuration::from_secs(3 + self.rng.next_u64() % 27);
                offender = match self.apps.running().first() {
                    Some(app) => app.clone(),
                    None => {
                        let idx = self.rng.weighted_index(&apps::launch_weights());
                        apps::CATALOG[idx].name.to_string()
                    }
                };
            }
        }
        match episode.escalation {
            None => {
                // Sometimes the user notices the misbehaviour and
                // power-cycles the phone; the off time follows the
                // user-reboot distribution, so most of these escape
                // the 360 s self-shutdown filter.
                if self.rng.chance(self.params.p_user_reboot_after_panic) {
                    let delay = SimDuration::from_secs(20 + self.rng.next_u64() % 200);
                    let dur = SimDuration::from_secs_f64(self.rng.lognormal(
                        self.params.user_reboot_median_secs,
                        self.params.user_reboot_sigma,
                    ));
                    self.stats.user_shutdowns += 1;
                    self.clean_shutdown(t + delay, ShutdownKind::Reboot, dur);
                }
            }
            Some(Escalation::Freeze) => {
                let delay = SimDuration::from_secs(5 + self.rng.next_u64() % 90);
                self.advance(t + delay);
                self.freeze(t + delay);
            }
            Some(Escalation::SelfShutdown) => {
                let delay = SimDuration::from_secs(5 + self.rng.next_u64() % 60);
                self.self_shutdown(t + delay);
            }
        }
    }

    /// Simulates one day of the campaign.
    pub fn simulate_day(&mut self, day: u64) {
        let params = self.params;
        let day_start = SimTime::ZERO + SimDuration::from_days(day);
        let jitter = |rng: &mut SimRng, secs: u64| SimDuration::from_secs(rng.next_u64() % secs);
        let wake = day_start
            + SimDuration::from_secs(self.profile.wake_secs)
            + jitter(&mut self.rng, 1200);
        let sleep = day_start
            + SimDuration::from_secs(self.profile.sleep_secs)
            + jitter(&mut self.rng, 1200);
        let waking_secs = sleep.saturating_since(wake).as_secs().max(1);

        // Morning: the phone charged overnight — unless today is the
        // day the user forgets, which ends in a LOWBT shutdown.
        let lowbt_today = self.rng.chance(params.p_lowbt_per_day);
        if lowbt_today {
            self.battery.recharge_to(30.0);
        } else {
            self.battery.recharge_full();
        }

        // First boot of the fleet member / nightly power-on.
        if !self.booted_once {
            self.power_on(wake);
        }
        self.advance(wake);

        let mut actions: Vec<(SimTime, Action)> = Vec::new();
        let at_random =
            |rng: &mut SimRng| wake + SimDuration::from_secs(rng.next_u64() % waking_secs);

        // Voice calls.
        let n_calls = sample_count(self.profile.calls_per_day, &mut self.rng);
        for _ in 0..n_calls {
            let t = at_random(&mut self.rng);
            let duration = SimDuration::from_secs_f64(
                self.rng
                    .lognormal(self.profile.call_median_secs, 0.9)
                    .max(5.0),
            );
            let episode = self
                .rng
                .chance(params.p_episode_per_call * self.firmware.fault_multiplier());
            let episode_offset =
                SimDuration::from_millis((duration.as_millis() as f64 * self.rng.uniform()) as u64);
            actions.push((
                t,
                Action::CallStart {
                    duration,
                    episode,
                    episode_offset,
                },
            ));
        }

        // Messages.
        let n_msgs = sample_count(self.profile.messages_per_day, &mut self.rng);
        for _ in 0..n_msgs {
            let t = at_random(&mut self.rng);
            let episode = self
                .rng
                .chance(params.p_episode_per_message * self.firmware.fault_multiplier());
            let deferred = episode && self.rng.chance(params.p_message_episode_deferred);
            actions.push((t, Action::MessageEvent { episode, deferred }));
        }

        // Application sessions.
        let n_sessions = sample_count(self.profile.app_sessions_per_day, &mut self.rng);
        for _ in 0..n_sessions {
            let t = at_random(&mut self.rng);
            let idx = self.rng.weighted_index(&apps::launch_weights());
            let spec = apps::CATALOG[idx];
            let duration = SimDuration::from_secs_f64(
                self.rng
                    .lognormal(spec.session_median_secs, spec.session_sigma)
                    .max(5.0),
            );
            actions.push((
                t,
                Action::SessionStart {
                    app: spec.name,
                    duration,
                },
            ));
        }

        // Powered span today (for rate-based events): waking hours
        // plus, for always-on users, the night.
        let powered_hours = if self.profile.nightly_shutdown {
            waking_secs as f64 / 3600.0
        } else {
            24.0
        };
        if self.rng.chance(
            params.background_episode_rate_per_hour
                * powered_hours
                * self.firmware.fault_multiplier(),
        ) {
            actions.push((at_random(&mut self.rng), Action::BackgroundEpisode));
        }
        if self
            .rng
            .chance(params.output_failure_rate_per_hour * powered_hours)
        {
            actions.push((at_random(&mut self.rng), Action::OutputFailure));
        }
        if self
            .rng
            .chance(params.isolated_freeze_rate_per_hour * powered_hours)
        {
            actions.push((at_random(&mut self.rng), Action::IsolatedFreeze));
        }
        if self
            .rng
            .chance(params.isolated_self_shutdown_rate_per_hour * powered_hours)
        {
            actions.push((at_random(&mut self.rng), Action::IsolatedSelfShutdown));
        }
        if self.rng.chance(params.user_reboot_rate_per_day) {
            actions.push((at_random(&mut self.rng), Action::UserReboot));
        }
        if lowbt_today {
            let evening = sleep - SimDuration::from_secs(self.rng.next_u64() % 7200);
            actions.push((evening, Action::LowBatteryShutdown));
        }
        if self.profile.nightly_shutdown {
            actions.push((sleep, Action::NightShutdown));
        }
        actions.push((sleep + SimDuration::from_secs(1), Action::EndOfDay));
        actions.sort_by_key(|(t, _)| *t);

        // Expand into an executable queue (session ends, call-attached
        // episodes) and process in time order.
        let mut queue: Vec<(SimTime, Action)> = Vec::new();
        for (t, action) in actions {
            queue.push((t, action));
        }
        queue.sort_by_key(|(t, _)| *t);
        let mut i = 0;
        while i < queue.len() {
            let (t, action) = queue[i].clone();
            i += 1;
            self.advance(t);
            if !matches!(self.state, PowerState::On) {
                // Device off or frozen: user actions are lost; the
                // boot happens lazily in advance().
                continue;
            }
            match action {
                Action::CallStart {
                    duration,
                    episode,
                    episode_offset,
                } => {
                    let end = t + duration;
                    self.stats.calls += 1;
                    self.apps.notify_started("Telephone");
                    self.logdb.record(t, end, ActivityKind::VoiceCall);
                    self.logger
                        .on_activity(&mut self.fs, t, end, ActivityKind::VoiceCall);
                    self.battery.drain(SimDuration::ZERO, duration);
                    if episode {
                        insert_sorted(
                            &mut queue,
                            i,
                            (
                                t + episode_offset,
                                Action::EpisodeAt(EpisodeContext::VoiceCall),
                            ),
                        );
                    }
                    insert_sorted(
                        &mut queue,
                        i,
                        (end, Action::SessionEnd { app: "Telephone" }),
                    );
                }
                Action::MessageEvent { episode, deferred } => {
                    let end = t + SimDuration::from_secs(40);
                    self.stats.messages += 1;
                    self.apps.notify_started("Messages");
                    self.logdb.record(t, end, ActivityKind::Message);
                    self.logger
                        .on_activity(&mut self.fs, t, end, ActivityKind::Message);
                    if episode {
                        if deferred {
                            let delay = SimDuration::from_secs(60 + self.rng.next_u64() % 180);
                            insert_sorted(
                                &mut queue,
                                i,
                                (
                                    t + delay,
                                    Action::EpisodeAt(EpisodeContext::DeferredMessaging),
                                ),
                            );
                        } else {
                            let off = SimDuration::from_secs(self.rng.next_u64() % 38);
                            insert_sorted(
                                &mut queue,
                                i,
                                (t + off, Action::EpisodeAt(EpisodeContext::Message)),
                            );
                        }
                    }
                    insert_sorted(&mut queue, i, (end, Action::SessionEnd { app: "Messages" }));
                }
                Action::SessionStart { app, duration } => {
                    self.apps.notify_started(app);
                    self.battery
                        .drain(SimDuration::ZERO, duration.min(SimDuration::from_hours(1)));
                    insert_sorted(&mut queue, i, (t + duration, Action::SessionEnd { app }));
                }
                Action::SessionEnd { app } => {
                    self.apps.notify_exited(app);
                }
                Action::BackgroundEpisode => {
                    self.run_episode(t, EpisodeContext::Background);
                }
                Action::EpisodeAt(ctx) => {
                    self.run_episode(t, ctx);
                }
                Action::OutputFailure => {
                    // A value failure the heartbeat cannot see: the
                    // charge indicator is wrong, a reminder fires at
                    // the wrong time… Only the user notices, and only
                    // sometimes files a report (the future-work
                    // extension's unreliability finding).
                    self.stats.output_failures += 1;
                    if self.rng.chance(params.p_user_reports_output_failure) {
                        let delay = SimDuration::from_secs(60 + self.rng.next_u64() % 1740);
                        let kind = match self.rng.weighted_index(&[7.0, 1.0, 2.0]) {
                            0 => UserReportKind::OutputFailure,
                            1 => UserReportKind::InputFailure,
                            _ => UserReportKind::UnstableBehavior,
                        };
                        self.user_reports
                            .on_user_report(&mut self.fs, t + delay, kind);
                        self.stats.user_reports += 1;
                    }
                }
                Action::IsolatedFreeze => {
                    self.freeze(t);
                }
                Action::IsolatedSelfShutdown => {
                    self.self_shutdown(t);
                }
                Action::UserReboot => {
                    self.stats.user_shutdowns += 1;
                    let dur = SimDuration::from_secs_f64(
                        self.rng
                            .lognormal(params.user_reboot_median_secs, params.user_reboot_sigma),
                    );
                    self.clean_shutdown(t, ShutdownKind::Reboot, dur);
                }
                Action::LowBatteryShutdown => {
                    self.stats.lowbt_shutdowns += 1;
                    // The user finds a charger within an hour or three.
                    let dur = SimDuration::from_secs(3600 + self.rng.next_u64() % 7200);
                    self.clean_shutdown(t, ShutdownKind::LowBattery, dur);
                }
                Action::NightShutdown => {
                    self.stats.user_shutdowns += 1;
                    // Off until tomorrow's wake, log-normally jittered
                    // around the nominal night span (the ~30 000 s mode
                    // of Figure 2).
                    let nominal = self.profile.night_span().as_secs_f64();
                    let dur =
                        SimDuration::from_secs_f64(self.rng.lognormal(nominal, params.night_sigma));
                    self.clean_shutdown(t, ShutdownKind::Reboot, dur);
                }
                Action::EndOfDay => {
                    // Idle drain for the evening hours already flowed
                    // through heartbeats; nothing else to do.
                }
            }
        }
    }
}

/// Inserts an item into the not-yet-processed tail of the queue,
/// keeping it time-sorted.
fn insert_sorted(queue: &mut Vec<(SimTime, Action)>, from: usize, item: (SimTime, Action)) {
    let pos = queue[from..]
        .iter()
        .position(|(t, _)| *t > item.0)
        .map(|p| from + p)
        .unwrap_or(queue.len());
    queue.insert(pos, item);
}

/// Samples an integer count with the given mean (mixed
/// floor + Bernoulli on the fractional part, with user-level noise).
fn sample_count(mean: f64, rng: &mut SimRng) -> u64 {
    let noisy = (mean * rng.lognormal(1.0, 0.25)).max(0.0);
    let base = noisy.floor() as u64;
    base + u64::from(rng.chance(noisy - base as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> CalibrationParams {
        CalibrationParams {
            phones: 1,
            campaign_days: 10,
            enrollment_spread_days: 1,
            attrition_spread_days: 1,
            ..CalibrationParams::default()
        }
    }

    fn run_days(seed: u64, days: u64) -> Phone {
        let mut phone = Phone::new(0, small_params(), SimRng::seed_from(seed).fork("phone", 0));
        for d in 0..days {
            phone.simulate_day(d);
        }
        phone
    }

    #[test]
    fn produces_heartbeats_and_boot_records() {
        let phone = run_days(1, 3);
        let fs = phone.flashfs();
        assert!(fs.read_lines("beats").count() > 100);
        assert!(fs.read_lines("log").count() >= 1);
        assert!(fs.read_lines("runapp").count() > 5);
        assert!(fs.read_lines("power").count() > 5);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_days(42, 5);
        let b = run_days(42, 5);
        assert_eq!(
            a.flashfs().read_bytes("beats"),
            b.flashfs().read_bytes("beats")
        );
        assert_eq!(a.flashfs().read_bytes("log"), b.flashfs().read_bytes("log"));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_days(1, 5);
        let b = run_days(2, 5);
        assert_ne!(
            a.flashfs().read_bytes("beats"),
            b.flashfs().read_bytes("beats")
        );
    }

    #[test]
    fn calls_and_messages_logged_as_activity() {
        let phone = run_days(7, 5);
        assert!(phone.stats().calls > 0);
        assert!(phone.stats().messages > 0);
        assert!(phone.flashfs().read_lines("activity").count() > 0);
    }

    #[test]
    fn forced_freeze_leaves_alive_signature() {
        let mut phone = Phone::new(0, small_params(), SimRng::seed_from(5).fork("phone", 0));
        phone.simulate_day(0);
        // Force a freeze mid-day-2 via an isolated freeze with full
        // probability.
        phone.params.isolated_freeze_rate_per_hour = 10.0;
        phone.simulate_day(1);
        phone.simulate_day(2);
        assert!(phone.stats().freezes > 0);
        let log: Vec<&str> = phone.flashfs().read_lines("log").collect();
        assert!(
            // The freeze flag is the last payload field, just before
            // the checksum trailer.
            log.iter().any(|l| l.starts_with('B') && l.contains("|1|c")),
            "a boot record with the freeze flag exists: {log:?}"
        );
    }
}
