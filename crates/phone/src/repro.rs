//! Signature-driven repro campaigns and ddmin-style minimization.
//!
//! Given a [`FailureSignature`] observed in a fleet campaign, this
//! module hunts for the *minimal* single-phone campaign that
//! deterministically reproduces a matching panic — the delta-debugging
//! loop the `repro minimize` subcommand drives:
//!
//! 1. **Seed search.** Probe single-phone campaigns at the full fault
//!    mix and the day budget, seed 0, 1, 2, … — the first reproducing
//!    seed wins. Every probe is a complete simulate → parse → match
//!    run over the phone's harvested flash, never a simulator-internal
//!    shortcut.
//! 2. **Corruption drop.** If the starting profile injected flash
//!    damage, try the clean profile first — damage is part of the
//!    campaign config, not of the failure class.
//! 3. **Day bisection.** With spreads zeroed a phone's RNG stream does
//!    not depend on `campaign_days`, so a shorter campaign's log is a
//!    byte prefix of a longer one's — core-mode matching is monotone
//!    in days and plain binary search finds the least reproducing day
//!    count.
//! 4. **Greedy channel drop.** Disable fault channels one at a time in
//!    fixed order, keeping each drop only if the repro still holds
//!    (dropping a channel removes its RNG draws, so the remaining
//!    stream shifts — every drop is re-proven by a full probe).
//! 5. **Final re-bisection** of days under the surviving channel set.
//!
//! Every accepted shrink step is itself a reproducing config and is
//! recorded on the [`Minimized::trail`], which is what the replay
//! harness re-runs. The whole search is a pure function of
//! `(signature, options)`, so the emitted [`ReproConfig`] JSON is
//! byte-identical across runs and machines.

use std::fmt;

use symfail_core::analysis::dataset::PhoneDataset;
use symfail_core::analysis::passes::DeviceLabels;
use symfail_core::analysis::report::AnalysisConfig;
use symfail_core::analysis::signature::{FailureSignature, MatchMode};
use symfail_sim_core::SimRng;

use crate::calibration::CalibrationParams;
use crate::composition::{DeviceClass, DeviceProfile};
use crate::corruption::{CorruptionModel, CorruptionProfile};
use crate::device::Phone;
use crate::firmware::SymbianVersion;
use crate::fleet::FleetCampaign;
use crate::user::UserProfile;

/// One independently switchable source of failure events in a repro
/// campaign — the ddmin search space's "fault mix" dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultChannel {
    /// Fault episodes carried by voice calls.
    Voice,
    /// Fault episodes carried by messages (immediate and deferred).
    Message,
    /// Background fault episodes.
    Background,
    /// Isolated (panic-less) freezes.
    IsolatedFreeze,
    /// Isolated self-shutdowns.
    IsolatedSelfShutdown,
    /// User-initiated reboots (scheduled and post-panic).
    UserReboot,
    /// Battery-flat (LOWBT) shutdowns.
    LowBattery,
    /// Output failures (value failures the logger cannot see).
    OutputFailure,
}

impl FaultChannel {
    /// Every channel, in the fixed greedy-drop order.
    pub const ALL: [FaultChannel; 8] = [
        FaultChannel::Voice,
        FaultChannel::Message,
        FaultChannel::Background,
        FaultChannel::IsolatedFreeze,
        FaultChannel::IsolatedSelfShutdown,
        FaultChannel::UserReboot,
        FaultChannel::LowBattery,
        FaultChannel::OutputFailure,
    ];

    /// The config-file name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultChannel::Voice => "voice",
            FaultChannel::Message => "message",
            FaultChannel::Background => "background",
            FaultChannel::IsolatedFreeze => "isolated-freeze",
            FaultChannel::IsolatedSelfShutdown => "isolated-self-shutdown",
            FaultChannel::UserReboot => "user-reboot",
            FaultChannel::LowBattery => "low-battery",
            FaultChannel::OutputFailure => "output-failure",
        }
    }

    /// Parses a config-file name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

/// Episode-channel boosts applied to a repro phone. The fleet's
/// calibrated rates make any single failure class a months-scale
/// event on one phone; reproduction compresses the exposure so a
/// ≤ 10-day campaign exercises every channel daily. The boosts change
/// *when* faults fire, never *what* a fault does — code tables,
/// escalation policy and kernel recovery stay at fleet calibration.
pub mod boosts {
    /// Probability a voice call carries a fault episode.
    pub const P_EPISODE_PER_CALL: f64 = 0.35;
    /// Probability a message carries a fault episode.
    pub const P_EPISODE_PER_MESSAGE: f64 = 0.25;
    /// Background episode rate per powered hour.
    pub const BACKGROUND_RATE_PER_HOUR: f64 = 0.30;
    /// Isolated freeze rate per powered hour.
    pub const ISOLATED_FREEZE_RATE_PER_HOUR: f64 = 0.02;
    /// Isolated self-shutdown rate per powered hour.
    pub const ISOLATED_SELF_SHUTDOWN_RATE_PER_HOUR: f64 = 0.02;
}

/// The calibration of a single-phone repro campaign: one phone, no
/// enrollment stagger, no nightly-shutdown quota, every enabled
/// channel boosted (see [`boosts`]) and every disabled channel zeroed.
pub fn repro_params(days: u32, channels: &[FaultChannel]) -> CalibrationParams {
    let on = |c: FaultChannel| channels.contains(&c);
    let gate = |c: FaultChannel, rate: f64| if on(c) { rate } else { 0.0 };
    let base = CalibrationParams::default();
    CalibrationParams {
        phones: 1,
        campaign_days: days,
        enrollment_spread_days: 0,
        attrition_spread_days: 0,
        nightly_shutdown_fraction: 0.0,
        p_episode_per_call: gate(FaultChannel::Voice, boosts::P_EPISODE_PER_CALL),
        p_episode_per_message: gate(FaultChannel::Message, boosts::P_EPISODE_PER_MESSAGE),
        background_episode_rate_per_hour: gate(
            FaultChannel::Background,
            boosts::BACKGROUND_RATE_PER_HOUR,
        ),
        isolated_freeze_rate_per_hour: gate(
            FaultChannel::IsolatedFreeze,
            boosts::ISOLATED_FREEZE_RATE_PER_HOUR,
        ),
        isolated_self_shutdown_rate_per_hour: gate(
            FaultChannel::IsolatedSelfShutdown,
            boosts::ISOLATED_SELF_SHUTDOWN_RATE_PER_HOUR,
        ),
        user_reboot_rate_per_day: gate(FaultChannel::UserReboot, base.user_reboot_rate_per_day),
        p_user_reboot_after_panic: gate(FaultChannel::UserReboot, base.p_user_reboot_after_panic),
        p_lowbt_per_day: gate(FaultChannel::LowBattery, base.p_lowbt_per_day),
        output_failure_rate_per_hour: gate(
            FaultChannel::OutputFailure,
            base.output_failure_rate_per_hour,
        ),
        ..base
    }
}

/// A fully specified single-phone repro campaign. Unlike a
/// [`FleetCampaign`] of size one — whose scatter formulas would pin
/// the phone to the composition's first class and the majority
/// firmware — the device profile here is explicit, so the repro phone
/// carries exactly the class and firmware line of the signature it
/// hunts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReproCampaign {
    /// Root seed of the phone's RNG streams.
    pub seed: u64,
    /// Simulated days (the phone is enrolled for the whole span).
    pub days: u32,
    /// Enabled fault channels, in [`FaultChannel::ALL`] order.
    pub channels: Vec<FaultChannel>,
    /// Flash corruption injected after the harvest.
    pub corruption: CorruptionProfile,
    /// The pinned device class + firmware line.
    pub device: DeviceProfile,
}

impl ReproCampaign {
    /// The device labels the repro phone's folds carry.
    pub fn labels(&self) -> DeviceLabels {
        DeviceLabels {
            device_class: self.device.class.as_str(),
            firmware: self.device.firmware.as_str(),
        }
    }

    /// Runs the campaign and parses the harvested flash — the same
    /// simulate → corrupt → parse chain [`FleetCampaign`] applies to
    /// each member, with phone id 0 and the pinned device profile.
    pub fn run(&self) -> PhoneDataset {
        let params = self
            .device
            .scale_params(&repro_params(self.days, &self.channels));
        let mut rng = SimRng::seed_from(self.seed).fork("phone", 0);
        let profile = UserProfile::sample_with_nightly(&params, &mut rng, false);
        let mut phone = Phone::with_profile(0, params, profile, rng.fork("device", 0));
        phone.set_firmware(self.device.firmware);
        for day in 0..self.days as u64 {
            phone.simulate_day(day);
        }
        let mut fs = phone.into_flashfs();
        if self.corruption != CorruptionProfile::None {
            let mut crng = SimRng::seed_from(self.seed).fork("corruption", 0);
            let rates = self.device.scale_corruption(self.corruption.rates());
            CorruptionModel::new(rates).inject(&mut fs, &mut crng);
        }
        PhoneDataset::from_flashfs(0, &fs)
    }

    /// Whether this campaign reproduces `signature` under `mode` — one
    /// full deterministic probe.
    pub fn reproduces(
        &self,
        signature: &FailureSignature,
        config: &AnalysisConfig,
        mode: MatchMode,
    ) -> bool {
        signature.matches_phone(&self.run(), config, self.labels(), mode)
    }
}

/// The emitted minimal campaign config: everything needed to replay
/// the repro, plus the signature it reproduces. Serializes with a
/// fixed field order so equal configs are byte-equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReproConfig {
    /// Root seed of the repro phone.
    pub seed: u64,
    /// Simulated days.
    pub days: u32,
    /// Enabled fault channels.
    pub channels: Vec<FaultChannel>,
    /// Corruption profile.
    pub corruption: CorruptionProfile,
    /// Match strictness the config was minimized under.
    pub mode: MatchMode,
    /// The signature this config reproduces.
    pub signature: FailureSignature,
}

impl ReproConfig {
    /// The campaign this config describes, with the device profile
    /// recovered from the signature's labels.
    pub fn campaign(&self) -> Result<ReproCampaign, String> {
        Ok(ReproCampaign {
            seed: self.seed,
            days: self.days,
            channels: self.channels.clone(),
            corruption: self.corruption,
            device: device_of(&self.signature)?,
        })
    }

    /// Replays the config: one full probe, true when the signature
    /// still reproduces.
    pub fn replay(&self, config: &AnalysisConfig) -> Result<bool, String> {
        Ok(self
            .campaign()?
            .reproduces(&self.signature, config, self.mode))
    }

    /// Serializes the config as JSON with a fixed field order.
    pub fn to_json(&self) -> String {
        let channels: Vec<String> = self
            .channels
            .iter()
            .map(|c| format!("\"{}\"", c.as_str()))
            .collect();
        format!(
            "{{\n  \"schema\": \"symfail-repro/1\",\n  \"seed\": {},\n  \
             \"days\": {},\n  \"channels\": [{}],\n  \"corruption\": \"{}\",\n  \
             \"match\": \"{}\",\n  \"signature\": {}\n}}\n",
            self.seed,
            self.days,
            channels.join(", "),
            self.corruption.as_str(),
            self.mode.as_str(),
            self.signature.to_json()
        )
    }

    /// Parses a config written by [`Self::to_json`].
    pub fn parse_json(text: &str) -> Result<Self, String> {
        let seed = json_u64(text, "seed").ok_or("repro config: missing seed")?;
        let days = json_u64(text, "days").ok_or("repro config: missing days")? as u32;
        let channels = json_name_array(text, "channels")
            .ok_or("repro config: missing channels")?
            .iter()
            .map(|name| {
                FaultChannel::parse(name).ok_or(format!("repro config: unknown channel {name}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let corruption_name =
            json_name(text, "corruption").ok_or("repro config: missing corruption")?;
        let corruption = CorruptionProfile::parse(&corruption_name).ok_or(format!(
            "repro config: unknown corruption {corruption_name}"
        ))?;
        let mode_name = json_name(text, "match").ok_or("repro config: missing match mode")?;
        let mode = MatchMode::parse(&mode_name)
            .ok_or(format!("repro config: unknown match mode {mode_name}"))?;
        let sig_at = text
            .find("\"signature\":")
            .ok_or("repro config: missing signature")?;
        let mut signatures =
            symfail_core::analysis::signature::signatures_from_json(&text[sig_at..])
                .map_err(|e| format!("repro config: {e}"))?;
        if signatures.len() != 1 {
            return Err("repro config: expected exactly one signature".to_string());
        }
        Ok(Self {
            seed,
            days,
            channels,
            corruption,
            mode,
            signature: signatures.remove(0),
        })
    }
}

/// Reads a bare unsigned integer field from flat JSON text.
fn json_u64(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Reads a quoted enum-name field (no escapes) from flat JSON text.
fn json_name(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Reads an array of quoted enum names from flat JSON text.
fn json_name_array(text: &str, key: &str) -> Option<Vec<String>> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix('[')?;
    let body = &rest[..rest.find(']')?];
    let mut out = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(part.strip_prefix('"')?.strip_suffix('"')?.to_string());
    }
    Some(out)
}

/// Tuning knobs of [`minimize`].
#[derive(Debug, Clone, Copy)]
pub struct MinimizeOptions {
    /// Day budget: the repro must land within this many simulated
    /// days (also the day count every seed probe runs at).
    pub max_days: u32,
    /// Seed budget for the initial search.
    pub max_seeds: u64,
    /// Corruption profile the search starts from (step 2 tries to
    /// drop it).
    pub corruption: CorruptionProfile,
    /// Match strictness of every probe.
    pub mode: MatchMode,
    /// Analysis thresholds the matcher judges under.
    pub config: AnalysisConfig,
}

impl Default for MinimizeOptions {
    fn default() -> Self {
        Self {
            max_days: 10,
            max_seeds: 256,
            corruption: CorruptionProfile::None,
            mode: MatchMode::Core,
            config: AnalysisConfig::default(),
        }
    }
}

/// A finished minimization: the minimal config, the accepted-shrink
/// trail (every entry reproduces; the last is `config`), and the
/// probe count the search spent.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The minimal reproducing config.
    pub config: ReproConfig,
    /// Every accepted search state, first (full) to last (minimal).
    pub trail: Vec<ReproConfig>,
    /// Full simulate→parse→match probes the search ran.
    pub probes: u64,
}

/// Why [`minimize`] found nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinimizeError {
    /// The signature names a device class or firmware line the
    /// simulator does not model.
    UnknownDevice(String),
    /// No seed in the budget reproduced the signature.
    NoRepro {
        /// Seeds probed.
        seeds: u64,
        /// Day budget each probe ran at.
        days: u32,
    },
}

impl fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinimizeError::UnknownDevice(what) => {
                write!(f, "signature names an unknown device: {what}")
            }
            MinimizeError::NoRepro { seeds, days } => write!(
                f,
                "no repro in {seeds} seeds at {days} days; raise --max-seeds or --max-days"
            ),
        }
    }
}

impl std::error::Error for MinimizeError {}

/// Recovers the pinned device profile from a signature's labels.
fn device_of(signature: &FailureSignature) -> Result<DeviceProfile, String> {
    let class = DeviceClass::parse(&signature.device_class)
        .ok_or(format!("unknown device class {:?}", signature.device_class))?;
    let firmware = SymbianVersion::ALL
        .into_iter()
        .find(|v| v.as_str() == signature.firmware)
        .ok_or(format!("unknown firmware {:?}", signature.firmware))?;
    Ok(DeviceProfile { class, firmware })
}

/// Runs the ddmin-style search described in the module docs. Pure in
/// `(signature, opts)`: the same inputs yield the same probes in the
/// same order and therefore a byte-identical minimal config.
pub fn minimize(
    signature: &FailureSignature,
    opts: &MinimizeOptions,
) -> Result<Minimized, MinimizeError> {
    let device = device_of(signature).map_err(MinimizeError::UnknownDevice)?;
    let mut probes = 0u64;
    let mut probe = |seed: u64, days: u32, channels: &[FaultChannel], corruption| {
        probes += 1;
        ReproCampaign {
            seed,
            days,
            channels: channels.to_vec(),
            corruption,
            device,
        }
        .reproduces(signature, &opts.config, opts.mode)
    };

    // 1. Seed search at the full mix and the day budget.
    let all = FaultChannel::ALL.to_vec();
    let seed = (0..opts.max_seeds)
        .find(|&s| probe(s, opts.max_days, &all, opts.corruption))
        .ok_or(MinimizeError::NoRepro {
            seeds: opts.max_seeds,
            days: opts.max_days,
        })?;
    let mut cur = ReproConfig {
        seed,
        days: opts.max_days,
        channels: all,
        corruption: opts.corruption,
        mode: opts.mode,
        signature: signature.clone(),
    };
    let mut trail = vec![cur.clone()];

    // 2. Corruption is campaign noise, not failure identity: drop it
    // if the clean run still reproduces.
    if cur.corruption != CorruptionProfile::None
        && probe(seed, cur.days, &cur.channels, CorruptionProfile::None)
    {
        cur.corruption = CorruptionProfile::None;
        trail.push(cur.clone());
    }

    // 3 / 5. Day bisection, also rerun after channel drops. Sound
    // because with zero spreads the log at d days is a byte prefix of
    // the log at D > d days (see module docs), so matching is
    // monotone in `days`.
    fn bisect_days<F: FnMut(u64, u32, &[FaultChannel], CorruptionProfile) -> bool>(
        cur: &mut ReproConfig,
        trail: &mut Vec<ReproConfig>,
        probe: &mut F,
    ) {
        let (mut lo, mut hi) = (1u32, cur.days);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if probe(cur.seed, mid, &cur.channels, cur.corruption) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        if hi < cur.days {
            cur.days = hi;
            trail.push(cur.clone());
        }
    }
    bisect_days(&mut cur, &mut trail, &mut probe);

    // 4. Greedy channel drop in the fixed ALL order; each accepted
    // drop is proven by a fresh probe at the current day count.
    for ch in FaultChannel::ALL {
        if !cur.channels.contains(&ch) || cur.channels.len() == 1 {
            continue;
        }
        let rest: Vec<FaultChannel> = cur.channels.iter().copied().filter(|&c| c != ch).collect();
        if probe(cur.seed, cur.days, &rest, cur.corruption) {
            cur.channels = rest;
            trail.push(cur.clone());
        }
    }

    bisect_days(&mut cur, &mut trail, &mut probe);
    Ok(Minimized {
        config: cur,
        trail,
        probes,
    })
}

/// Streams the fleet campaign phone by phone and extracts the
/// distinct-signature catalog — `(signature, occurrences)` sorted by
/// key — without ever materializing the fleet. Each phone's panics
/// resolve against its own name table; interner independence makes
/// the result identical to extraction from the merged fleet.
pub fn extract_fleet_signatures(
    campaign: &FleetCampaign,
    config: &AnalysisConfig,
) -> Vec<(FailureSignature, u64)> {
    let mut out: Vec<(FailureSignature, u64)> = Vec::new();
    for id in 0..campaign.params().phones {
        let harvest = campaign.run_single(id);
        let phone = PhoneDataset::from_flashfs(id, &harvest.flashfs);
        for sig in FailureSignature::from_phone(&phone, config, campaign.device_labels(id)) {
            match out.iter_mut().find(|(s, _)| *s == sig) {
                Some((_, n)) => *n += 1,
                None => out.push((sig, 1)),
            }
        }
    }
    out.sort_by_key(|(s, _)| s.key());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn some_signature() -> FailureSignature {
        // A cheap fleet slice is guaranteed to panic somewhere under
        // boosted single-phone probing; take a catalog entry from a
        // short boosted run instead of hand-writing one.
        let campaign = ReproCampaign {
            seed: 11,
            days: 6,
            channels: FaultChannel::ALL.to_vec(),
            corruption: CorruptionProfile::None,
            device: DeviceProfile {
                class: DeviceClass::Smartphone,
                firmware: SymbianVersion::V8_0,
            },
        };
        let phone = campaign.run();
        let sigs =
            FailureSignature::from_phone(&phone, &AnalysisConfig::default(), campaign.labels());
        sigs.into_iter().next().expect("boosted run panics")
    }

    #[test]
    fn repro_campaign_is_deterministic() {
        let campaign = ReproCampaign {
            seed: 5,
            days: 3,
            channels: FaultChannel::ALL.to_vec(),
            corruption: CorruptionProfile::Light,
            device: DeviceProfile {
                class: DeviceClass::Communicator,
                firmware: SymbianVersion::V7_0,
            },
        };
        let a = campaign.run();
        let b = campaign.run();
        assert_eq!(a.panics(), b.panics());
        assert_eq!(a.names(), b.names());
    }

    #[test]
    fn channel_names_round_trip() {
        for c in FaultChannel::ALL {
            assert_eq!(FaultChannel::parse(c.as_str()), Some(c));
        }
        assert_eq!(FaultChannel::parse("bogus"), None);
    }

    #[test]
    fn config_json_round_trips() {
        let cfg = ReproConfig {
            seed: 42,
            days: 7,
            channels: vec![FaultChannel::Voice, FaultChannel::Background],
            corruption: CorruptionProfile::Moderate,
            mode: MatchMode::Strict,
            signature: some_signature(),
        };
        let parsed = ReproConfig::parse_json(&cfg.to_json()).unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn minimize_finds_and_replays() {
        let sig = some_signature();
        let opts = MinimizeOptions::default();
        let min = minimize(&sig, &opts).expect("signature from a boosted run minimizes");
        assert!(min.config.days <= opts.max_days);
        assert!(min.config.replay(&opts.config).unwrap());
        assert_eq!(min.trail.last().unwrap(), &min.config);
        assert!(min.probes >= min.trail.len() as u64);
    }

    #[test]
    fn minimize_is_deterministic() {
        let sig = some_signature();
        let opts = MinimizeOptions::default();
        let a = minimize(&sig, &opts).unwrap();
        let b = minimize(&sig, &opts).unwrap();
        assert_eq!(a.config.to_json(), b.config.to_json());
        assert_eq!(a.probes, b.probes);
    }

    #[test]
    fn unknown_device_is_refused() {
        let mut sig = some_signature();
        sig.device_class = "toaster".to_string();
        assert!(matches!(
            minimize(&sig, &MinimizeOptions::default()),
            Err(MinimizeError::UnknownDevice(_))
        ));
    }
}
