//! The kernel recovery policy: what the kernel does with a panic.
//!
//! Section 2 of the paper: "Information associated with a panic (panic
//! category and panic type) is delivered to the kernel, which decides
//! on the recovery action, e.g., application termination or system
//! reboot." Section 6 adds the field observations the policy encodes:
//!
//! * EIKON-LISTBOX, EIKCOCTL, MMFAudioClient and KERN-SVR panics are
//!   plain application-level failures — the kernel terminates the
//!   offending application and the phone keeps working;
//! * Phone.app and MSGS Client are core applications — the kernel
//!   always reboots the phone when either fails;
//! * system-level panics (KERN-EXEC, E32USER-CBase, USER, ViewSrv) may
//!   propagate — depending on the component hit and the load, the
//!   phone can crash (freeze or reboot) or survive with the offending
//!   application terminated.

use serde::{Deserialize, Serialize};

use symfail_symbian::PanicCode;

/// The kernel's deterministic classification of a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelDecision {
    /// Terminate the offending application; the phone keeps working
    /// and no high-level failure can result.
    TerminateApplication,
    /// A core application failed: reboot the phone (observed as a
    /// self-shutdown).
    RebootPhone,
    /// A system-level panic: terminate the application, but the error
    /// may have propagated — escalation to a freeze or self-shutdown
    /// is possible (the probabilistic part lives in the fault model).
    TerminateWithEscalationRisk,
}

/// Classifies a panic per the policy above.
pub fn kernel_decision(code: PanicCode) -> KernelDecision {
    if code.category.is_core_application() {
        KernelDecision::RebootPhone
    } else if code.category.is_application_level() {
        KernelDecision::TerminateApplication
    } else {
        KernelDecision::TerminateWithEscalationRisk
    }
}

impl KernelDecision {
    /// True when this decision can produce a user-perceived high-level
    /// failure (freeze or self-shutdown).
    pub fn can_cause_hl_event(self) -> bool {
        !matches!(self, KernelDecision::TerminateApplication)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symfail_symbian::panic::codes;

    #[test]
    fn core_applications_always_reboot() {
        assert_eq!(
            kernel_decision(codes::PHONE_APP_2),
            KernelDecision::RebootPhone
        );
        assert_eq!(
            kernel_decision(codes::MSGS_CLIENT_3),
            KernelDecision::RebootPhone
        );
    }

    #[test]
    fn application_level_panics_never_escalate() {
        for code in [
            codes::EIKON_LISTBOX_3,
            codes::EIKON_LISTBOX_5,
            codes::EIKCOCTL_70,
            codes::MMF_AUDIO_CLIENT_4,
            codes::KERN_SVR_0,
            codes::KERN_SVR_70,
        ] {
            let d = kernel_decision(code);
            assert_eq!(d, KernelDecision::TerminateApplication);
            assert!(!d.can_cause_hl_event());
        }
    }

    #[test]
    fn system_panics_carry_escalation_risk() {
        for code in [
            codes::KERN_EXEC_0,
            codes::KERN_EXEC_3,
            codes::KERN_EXEC_15,
            codes::E32USER_CBASE_33,
            codes::E32USER_CBASE_46,
            codes::E32USER_CBASE_47,
            codes::E32USER_CBASE_69,
            codes::E32USER_CBASE_91,
            codes::E32USER_CBASE_92,
            codes::USER_10,
            codes::USER_11,
            codes::VIEWSRV_11,
        ] {
            let d = kernel_decision(code);
            assert_eq!(d, KernelDecision::TerminateWithEscalationRisk);
            assert!(d.can_cause_hl_event());
        }
    }

    #[test]
    fn every_taxonomy_code_is_classified() {
        for (code, _) in codes::ALL {
            let _ = kernel_decision(code); // total function, no panic
        }
    }
}
