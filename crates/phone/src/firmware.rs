//! Firmware: the Symbian OS version a phone runs.
//!
//! The study's phones ran "Symbian OS versions 6.1 to 8.0 or version
//! 9.0", with version 8.0 — the most popular on the market when the
//! analysis started — in the majority. Firmware matters to the fault
//! model because older releases carry more residual faults (the paper:
//! time-to-market pressure compromises testing, and reliability fixes
//! ship as firmware updates installed by service centers).

use serde::{Deserialize, Serialize};

/// A Symbian OS release deployed in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SymbianVersion {
    /// Symbian OS 6.1 (2001-era devices).
    V6_1,
    /// Symbian OS 7.0.
    V7_0,
    /// Symbian OS 8.0 — the fleet majority.
    V8_0,
    /// Symbian OS 9.0 — the newest devices in the study.
    V9_0,
}

impl SymbianVersion {
    /// All versions, oldest first.
    pub const ALL: [SymbianVersion; 4] = [
        SymbianVersion::V6_1,
        SymbianVersion::V7_0,
        SymbianVersion::V8_0,
        SymbianVersion::V9_0,
    ];

    /// Display label.
    pub fn as_str(self) -> &'static str {
        match self {
            SymbianVersion::V6_1 => "Symbian 6.1",
            SymbianVersion::V7_0 => "Symbian 7.0",
            SymbianVersion::V8_0 => "Symbian 8.0",
            SymbianVersion::V9_0 => "Symbian 9.0",
        }
    }

    /// Fleet share of each version (majority on 8.0, as in the paper).
    pub fn fleet_share(self) -> f64 {
        match self {
            SymbianVersion::V6_1 => 0.16,
            SymbianVersion::V7_0 => 0.16,
            SymbianVersion::V8_0 => 0.60,
            SymbianVersion::V9_0 => 0.08,
        }
    }

    /// Residual-fault multiplier applied to the phone's episode
    /// probabilities: older firmware is buggier, newer firmware
    /// benefits from accumulated fixes. The shares and multipliers are
    /// chosen so the fleet-weighted mean is ≈ 1.0 — firmware shifts
    /// *which phones* fail more, without moving the fleet totals the
    /// calibration pins.
    pub fn fault_multiplier(self) -> f64 {
        match self {
            SymbianVersion::V6_1 => 1.25,
            SymbianVersion::V7_0 => 1.10,
            SymbianVersion::V8_0 => 0.95,
            SymbianVersion::V9_0 => 0.80,
        }
    }

    /// Stratified assignment for phone `id` of `fleet` phones: the
    /// version quotas are honoured exactly (up to rounding) and spread
    /// across the fleet with a fixed coprime permutation, so the mix
    /// does not depend on the seed.
    pub fn assign(id: u32, fleet: u32) -> SymbianVersion {
        let n = fleet.max(1) as u64;
        let slot = ((id as u64 * 13 + 7) % n) as f64 + 0.5;
        let pos = slot / n as f64;
        let mut acc = 0.0;
        for v in SymbianVersion::ALL {
            acc += v.fleet_share();
            if pos < acc {
                return v;
            }
        }
        SymbianVersion::V9_0
    }
}

impl std::fmt::Display for SymbianVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let sum: f64 = SymbianVersion::ALL.iter().map(|v| v.fleet_share()).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fleet_weighted_multiplier_is_near_one() {
        let mean: f64 = SymbianVersion::ALL
            .iter()
            .map(|v| v.fleet_share() * v.fault_multiplier())
            .sum();
        assert!((mean - 1.0).abs() < 0.02, "mean multiplier {mean}");
    }

    #[test]
    fn assignment_respects_quotas() {
        let fleet = 25;
        let mut counts = std::collections::BTreeMap::new();
        for id in 0..fleet {
            *counts.entry(SymbianVersion::assign(id, fleet)).or_insert(0) += 1;
        }
        // Majority on 8.0, every version represented at 25 phones.
        assert!(counts[&SymbianVersion::V8_0] >= 13);
        assert!(counts.len() == 4, "all versions present: {counts:?}");
        // Quotas honoured within rounding.
        for v in SymbianVersion::ALL {
            let expected = v.fleet_share() * fleet as f64;
            let got = *counts.get(&v).unwrap_or(&0) as f64;
            assert!(
                (got - expected).abs() <= 1.0,
                "{v}: got {got}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn assignment_is_deterministic_and_total() {
        for fleet in [1u32, 2, 5, 25, 100] {
            for id in 0..fleet {
                assert_eq!(
                    SymbianVersion::assign(id, fleet),
                    SymbianVersion::assign(id, fleet)
                );
            }
        }
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SymbianVersion::V6_1 < SymbianVersion::V8_0);
        assert!(SymbianVersion::V8_0 < SymbianVersion::V9_0);
    }

    #[test]
    fn newer_firmware_is_less_buggy() {
        let mut last = f64::INFINITY;
        for v in SymbianVersion::ALL {
            assert!(v.fault_multiplier() < last);
            last = v.fault_multiplier();
        }
    }
}
