//! Deterministic flash-log corruption injection.
//!
//! The field study's logs did not come back pristine: a battery pull
//! mid-write truncates the last record, flash wear loses tail pages,
//! bad blocks garble bytes, and interleaved writes across reboots
//! duplicate or reorder heartbeat blocks. This module injects exactly
//! those damage classes into a harvested [`FlashFs`], driven by a
//! forked [`SimRng`] stream per phone so the injection is a pure
//! function of `(root seed, phone id)` — the parallel campaign stays
//! byte-identical for any worker count.
//!
//! Every injection step records how many defects the lossy parser is
//! *expected to observe* in [`InjectedDefects`], which is what the
//! proptests pin against the parser's [`DefectReport`] counts:
//!
//! * truncation counts are exact;
//! * tail loss is silent by construction (whole lines vanish — no
//!   parser can see them) and tracked separately;
//! * bit-flip / duplicate / reorder counts are exact up to the
//!   truncation-ambiguity bound — the final-line truncation may land
//!   on a line another step already damaged, converting one expected
//!   observation into a `truncated` one.

use symfail_core::flashfs::FlashFs;
use symfail_core::logger::files;
use symfail_core::records::decode_beat;
use symfail_sim_core::SimRng;

/// Named corruption intensity, selectable from `repro --corruption`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CorruptionProfile {
    /// No injection at all (the profile equivalent of not asking).
    #[default]
    None,
    /// Rare damage: what a healthy fleet's flash looks like.
    Light,
    /// Noticeable damage on most phones.
    Moderate,
    /// Every damage class fires on every phone — the stress profile
    /// used for the worst-case parse benchmark.
    Worst,
}

impl CorruptionProfile {
    /// Parses a profile name as given on the command line.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Self::None),
            "light" => Some(Self::Light),
            "moderate" => Some(Self::Moderate),
            "worst" => Some(Self::Worst),
            _ => None,
        }
    }

    /// The command-line name.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Light => "light",
            Self::Moderate => "moderate",
            Self::Worst => "worst",
        }
    }

    /// The per-phone damage rates of this profile.
    pub fn rates(self) -> CorruptionRates {
        match self {
            Self::None => CorruptionRates::default(),
            Self::Light => CorruptionRates {
                p_tail_loss: 0.10,
                max_tail_lines: 3,
                p_dup_block: 0.10,
                dup_attempts: 1,
                p_reorder_block: 0.10,
                reorder_attempts: 1,
                p_bitflip: 0.002,
                p_truncate: 0.15,
            },
            Self::Moderate => CorruptionRates {
                p_tail_loss: 0.35,
                max_tail_lines: 8,
                p_dup_block: 0.40,
                dup_attempts: 2,
                p_reorder_block: 0.40,
                reorder_attempts: 2,
                p_bitflip: 0.01,
                p_truncate: 0.40,
            },
            Self::Worst => CorruptionRates {
                p_tail_loss: 1.0,
                max_tail_lines: 12,
                p_dup_block: 1.0,
                dup_attempts: 4,
                p_reorder_block: 1.0,
                reorder_attempts: 4,
                p_bitflip: 0.25,
                p_truncate: 1.0,
            },
        }
    }
}

/// Per-phone damage rates (all probabilities per opportunity).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CorruptionRates {
    /// Chance, per file, of losing a tail of whole lines (flash wear).
    pub p_tail_loss: f64,
    /// Upper bound on lines lost per tail-loss event.
    pub max_tail_lines: u64,
    /// Chance, per attempt, of duplicating a heartbeat block.
    pub p_dup_block: f64,
    /// Number of duplication attempts.
    pub dup_attempts: u32,
    /// Chance, per attempt, of swapping two adjacent heartbeat blocks.
    pub p_reorder_block: f64,
    /// Number of reorder attempts.
    pub reorder_attempts: u32,
    /// Chance, per consolidated-log record, of one flipped bit.
    pub p_bitflip: f64,
    /// Chance, per file, of cutting the final record mid-line
    /// (battery pull during the last write).
    pub p_truncate: f64,
}

/// How many defects of each class were injected, expressed as the
/// counts the lossy parser is expected to observe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedDefects {
    /// Mid-record cuts (parser: `truncated`, exact).
    pub truncated: u64,
    /// Bit-flipped log records (parser: `checksum-mismatch`).
    pub checksum_garbled: u64,
    /// Duplicated heartbeat lines (parser: `duplicate`).
    pub duplicated: u64,
    /// Heartbeat lines expected to decode behind the running maximum
    /// after a block swap (parser: `out-of-order`).
    pub out_of_order: u64,
    /// Whole lines silently lost from file tails — invisible to any
    /// parser, excluded from count pinning.
    pub tail_lines_lost: u64,
}

impl InjectedDefects {
    /// Total defects the parser can observe (tail loss excluded).
    pub fn total_observable(&self) -> u64 {
        self.truncated + self.checksum_garbled + self.duplicated + self.out_of_order
    }

    /// Folds another phone's counters into this one.
    pub fn merge(&mut self, other: &InjectedDefects) {
        self.truncated += other.truncated;
        self.checksum_garbled += other.checksum_garbled;
        self.duplicated += other.duplicated;
        self.out_of_order += other.out_of_order;
        self.tail_lines_lost += other.tail_lines_lost;
    }
}

/// The injector: applies one profile's damage to one phone's flash.
#[derive(Debug, Clone, Copy)]
pub struct CorruptionModel {
    rates: CorruptionRates,
}

impl CorruptionModel {
    /// An injector with explicit rates.
    pub fn new(rates: CorruptionRates) -> Self {
        Self { rates }
    }

    /// An injector with a named profile's rates.
    pub fn from_profile(profile: CorruptionProfile) -> Self {
        Self::new(profile.rates())
    }

    /// Damages `fs` in place, consuming randomness only from `rng`.
    /// Returns the expected-observable defect counts.
    ///
    /// Order matters and is fixed: tail loss first (whole lines
    /// vanish), then heartbeat block duplication and reordering
    /// (chosen against the post-tail-loss file on disjoint ranges),
    /// then log bit-flips, then final-record truncation — so the one
    /// damage class that can mask another (truncation) always runs
    /// last and masks at most one line per file.
    pub fn inject(&self, fs: &mut FlashFs, rng: &mut SimRng) -> InjectedDefects {
        let mut injected = InjectedDefects::default();
        let r = &self.rates;

        let mut log_lines = read_lines(fs, files::LOG);
        let mut beat_lines = read_lines(fs, files::BEATS);

        // 1. Tail loss (flash wear drops whole trailing pages). Capped
        // at half the file so a short log degrades instead of
        // vanishing — total loss is the separate `unusable` scenario,
        // exercised directly in tests.
        for lines in [&mut log_lines, &mut beat_lines] {
            if r.p_tail_loss > 0.0 && rng.chance(r.p_tail_loss) && !lines.is_empty() {
                let k = 1 + rng.next_u64() % r.max_tail_lines.max(1);
                let k = (k as usize).min(lines.len() / 2);
                if k > 0 {
                    lines.truncate(lines.len() - k);
                    injected.tail_lines_lost += k as u64;
                }
            }
        }

        // 2/3. Heartbeat block duplication and reordering. Ranges are
        // chosen against the original index space, kept mutually
        // disjoint, and applied back-to-front so earlier indexes stay
        // valid.
        let mut used: Vec<(usize, usize)> = Vec::new();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        for _ in 0..r.dup_attempts {
            if r.p_dup_block == 0.0 || !rng.chance(r.p_dup_block) {
                continue;
            }
            let n = beat_lines.len();
            if n == 0 {
                continue;
            }
            let len = 1 + rng.index(3.min(n));
            let start = rng.index(n - len + 1);
            if overlaps(&used, start, start + len) {
                continue;
            }
            used.push((start, start + len));
            dups.push((start, len));
            injected.duplicated += len as u64;
        }
        let mut swaps: Vec<(usize, usize, usize)> = Vec::new();
        for _ in 0..r.reorder_attempts {
            if r.p_reorder_block == 0.0 || !rng.chance(r.p_reorder_block) {
                continue;
            }
            let n = beat_lines.len();
            if n < 2 {
                continue;
            }
            let a = 1 + rng.index(3.min(n - 1));
            let b = 1 + rng.index(3.min(n - a));
            let start = rng.index(n - a - b + 1);
            if overlaps(&used, start, start + a + b) {
                continue;
            }
            used.push((start, start + a + b));
            swaps.push((start, a, b));
            // The parser keeps a running timestamp maximum that does
            // not advance past an out-of-order record, so after
            // swapping A,B -> B,A it flags exactly the A-lines whose
            // timestamp is strictly below B's maximum.
            let time = |line: &String| decode_beat(line).map(|(t, _)| t.as_millis()).ok();
            let max_b = beat_lines[start + a..start + a + b]
                .iter()
                .filter_map(time)
                .max();
            if let Some(max_b) = max_b {
                injected.out_of_order += beat_lines[start..start + a]
                    .iter()
                    .filter_map(time)
                    .filter(|&t| t < max_b)
                    .count() as u64;
            }
        }
        let mut ops: Vec<BlockOp> = dups
            .into_iter()
            .map(|(start, len)| BlockOp::Dup { start, len })
            .chain(
                swaps
                    .into_iter()
                    .map(|(start, a, b)| BlockOp::Swap { start, a, b }),
            )
            .collect();
        ops.sort_by_key(|op| std::cmp::Reverse(op.start()));
        for op in ops {
            match op {
                BlockOp::Dup { start, len } => {
                    let copy: Vec<String> = beat_lines[start..start + len].to_vec();
                    for (i, line) in copy.into_iter().enumerate() {
                        beat_lines.insert(start + len + i, line);
                    }
                }
                BlockOp::Swap { start, a, b } => {
                    beat_lines[start..start + a + b].rotate_left(a);
                }
            }
        }

        // 4. Bit-flips in log record payloads. The payload region
        // excludes the checksum trailer (`|cXXXX`, 6 bytes), so the
        // trailer keeps its shape and the parser classifies the line
        // as checksum-mismatch, not truncation.
        if r.p_bitflip > 0.0 {
            for line in &mut log_lines {
                if line.len() > 6 && rng.chance(r.p_bitflip) && flip_payload_byte(line, rng) {
                    injected.checksum_garbled += 1;
                }
            }
        }

        // 5. Final-record truncation (battery pull mid-write). Runs
        // last; cuts at least one byte and keeps at least one, so a
        // partial record remains on flash.
        let mut cut = [false, false];
        for (i, lines) in [&mut log_lines, &mut beat_lines].into_iter().enumerate() {
            if r.p_truncate > 0.0 && rng.chance(r.p_truncate) {
                if let Some(last) = lines.last_mut() {
                    if last.len() >= 2 {
                        let keep = 1 + rng.index(last.len() - 1);
                        last.truncate(keep);
                        injected.truncated += 1;
                        cut[i] = true;
                    }
                }
            }
        }

        write_lines(fs, files::LOG, &log_lines, cut[0]);
        write_lines(fs, files::BEATS, &beat_lines, cut[1]);
        injected
    }
}

/// A block-level mutation of the beats file, in original index space.
enum BlockOp {
    Dup { start: usize, len: usize },
    Swap { start: usize, a: usize, b: usize },
}

impl BlockOp {
    fn start(&self) -> usize {
        match *self {
            BlockOp::Dup { start, .. } | BlockOp::Swap { start, .. } => start,
        }
    }
}

fn overlaps(used: &[(usize, usize)], lo: usize, hi: usize) -> bool {
    used.iter().any(|&(a, b)| lo < b && a < hi)
}

fn read_lines(fs: &FlashFs, file: &str) -> Vec<String> {
    fs.read_lines(file).map(str::to_string).collect()
}

/// Flips one bit of one payload byte, re-rolling the bit if the result
/// would be a newline (the damage model is bad cells, not lost
/// framing). Flipping one of bits 0–6 of an ASCII byte keeps the line
/// ASCII, so non-ASCII lines are left alone (returns false).
fn flip_payload_byte(line: &mut String, rng: &mut SimRng) -> bool {
    let payload_len = line.len() - 6; // keep the `|cXXXX` trailer intact
    let pos = rng.index(payload_len);
    let first_bit = rng.index(7); // bit 7 would leave ASCII
    if !line.is_ascii() {
        return false;
    }
    let mut bytes = std::mem::take(line).into_bytes();
    let mut flipped_any = false;
    for step in 0..7 {
        let flipped = bytes[pos] ^ (1 << ((first_bit + step) % 7));
        if flipped != b'\n' && flipped != b'\r' {
            bytes[pos] = flipped;
            flipped_any = true;
            break;
        }
    }
    *line = String::from_utf8(bytes).expect("ascii bit flip stays utf-8");
    flipped_any
}

/// Writes lines back. The trailing newline is kept unless the final
/// record was cut mid-line (`cut_tail`), which is exactly the
/// mid-write power-loss signature.
fn write_lines(fs: &mut FlashFs, file: &str, lines: &[String], cut_tail: bool) {
    if !fs.exists(file) {
        return;
    }
    let mut buf = lines.join("\n").into_bytes();
    if !buf.is_empty() && !cut_tail {
        buf.push(b'\n');
    }
    fs.overwrite_raw(file, buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beats_fs(n: u64) -> FlashFs {
        let mut fs = FlashFs::new();
        for i in 0..n {
            fs.append_line(files::BEATS, &format!("{}|ALIVE", i * 30_000));
        }
        fs
    }

    #[test]
    fn profile_parsing_round_trips() {
        for p in [
            CorruptionProfile::None,
            CorruptionProfile::Light,
            CorruptionProfile::Moderate,
            CorruptionProfile::Worst,
        ] {
            assert_eq!(CorruptionProfile::parse(p.as_str()), Some(p));
        }
        assert_eq!(CorruptionProfile::parse("bogus"), None);
    }

    #[test]
    fn none_profile_is_identity() {
        let mut fs = beats_fs(10);
        let before = fs.read_bytes(files::BEATS).unwrap().to_vec();
        let model = CorruptionModel::from_profile(CorruptionProfile::None);
        let injected = model.inject(&mut fs, &mut SimRng::seed_from(1));
        assert_eq!(injected, InjectedDefects::default());
        assert_eq!(fs.read_bytes(files::BEATS).unwrap(), &before[..]);
    }

    #[test]
    fn injection_is_deterministic_in_the_seed() {
        let model = CorruptionModel::from_profile(CorruptionProfile::Worst);
        let mut a = beats_fs(50);
        let mut b = beats_fs(50);
        let ia = model.inject(&mut a, &mut SimRng::seed_from(99));
        let ib = model.inject(&mut b, &mut SimRng::seed_from(99));
        assert_eq!(ia, ib);
        assert_eq!(
            a.read_bytes(files::BEATS).unwrap(),
            b.read_bytes(files::BEATS).unwrap()
        );
    }

    #[test]
    fn worst_profile_damages_beats() {
        let mut fs = beats_fs(50);
        let before = fs.read_bytes(files::BEATS).unwrap().to_vec();
        let model = CorruptionModel::from_profile(CorruptionProfile::Worst);
        let injected = model.inject(&mut fs, &mut SimRng::seed_from(7));
        assert!(injected.total_observable() > 0, "{injected:?}");
        assert_ne!(fs.read_bytes(files::BEATS).unwrap(), &before[..]);
    }

    #[test]
    fn wear_counter_untouched_by_damage() {
        let mut fs = beats_fs(20);
        let wear = fs.bytes_written();
        CorruptionModel::from_profile(CorruptionProfile::Worst)
            .inject(&mut fs, &mut SimRng::seed_from(3));
        assert_eq!(fs.bytes_written(), wear);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = InjectedDefects {
            truncated: 1,
            duplicated: 2,
            ..InjectedDefects::default()
        };
        a.merge(&InjectedDefects {
            truncated: 1,
            out_of_order: 3,
            tail_lines_lost: 4,
            ..InjectedDefects::default()
        });
        assert_eq!(a.truncated, 2);
        assert_eq!(a.total_observable(), 7);
        assert_eq!(a.tail_lines_lost, 4);
    }
}
