#!/usr/bin/env bash
# The tier-1 byte-identity, throughput and crash-resume gates, shared
# verbatim between CI (the tier1 job) and local runs
# (`scripts/tier1.sh --gates`). Everything the gates produce — reports,
# timing dumps, checkpoints — lives in a private temp directory removed
# on exit, so an aborted gate never litters the working tree the way
# the old inline ci.yml steps littered the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

SEED="${SEED:-2005}"
PHONES="${PHONES:-250}"
DAYS="${DAYS:-60}"
WORKERS="${WORKERS:-13}"
# 2x the pre-sharding 250-phone parse rate (40.26 MB/s at PR 5) — the
# anti-cliff contract inherited from the sharded-merger PR.
MBPS_FLOOR="${MBPS_FLOOR:-80.52}"

cargo build --release -p symfail-bench --bin repro >/dev/null
BIN="$ROOT/target/release/repro"

TMP="$(mktemp -d "${TMPDIR:-/tmp}/symfail-gates.XXXXXX")"
trap 'rm -rf "$TMP"' EXIT
cd "$TMP"

echo "ci_gates: streaming vs batch byte identity ($PHONES phones, worst corruption)" >&2
"$BIN" --exp all --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
    --engine batch --corruption worst > report_batch.txt
"$BIN" --exp all --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
    --engine streaming --corruption worst --workers "$WORKERS" > report_stream.txt
cmp report_batch.txt report_stream.txt

echo "ci_gates: sharded vs serial merge byte identity" >&2
"$BIN" --exp all --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
    --engine streaming --corruption worst --workers "$WORKERS" \
    --merge serial > report_serial.txt
cmp report_stream.txt report_serial.txt

echo "ci_gates: streaming parse throughput floor ($MBPS_FLOOR MB/s)" >&2
"$BIN" --exp defects --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
    --engine streaming --workers 1 --timing-json stream_250.json > /dev/null
awk -F'[:,]' -v floor="$MBPS_FLOOR" '/"parse_seconds":/ { s = $2 + 0 }
    /"parse_bytes":/ { b = $2 + 0 }
    END {
      mbps = (s > 0) ? b / s / 1048576 : 0
      printf "ci_gates: streaming parse: %.2f MB/s (floor %s)\n", mbps, floor
      exit !(mbps >= floor)
    }' stream_250.json >&2

echo "ci_gates: checkpoint interrupt/resume byte identity (kill at phone 97)" >&2
"$BIN" --exp all --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
    --engine streaming --corruption worst --workers "$WORKERS" \
    --checkpoint ckpt.bin --checkpoint-every 10 --stop-after 97 > /dev/null
"$BIN" --exp all --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
    --engine streaming --corruption worst --workers "$WORKERS" \
    --checkpoint ckpt.bin --mtbf-trace-json mtbf_trace.json > report_resumed.txt
cmp report_stream.txt report_resumed.txt
grep -q '"resumed_from": 97' mtbf_trace.json

echo "ci_gates: 4-process cost-balanced shard merge byte identity" >&2
for i in 0 1 2 3; do
    "$BIN" --exp targets --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
        --engine streaming --corruption worst \
        --shard "$i/4" --balance static --checkpoint "shard$i.bin" > /dev/null
done
"$BIN" merge-checkpoints merged.bin shard0.bin shard1.bin shard2.bin shard3.bin \
    --seed "$SEED" --phones "$PHONES" --days "$DAYS" --corruption worst \
    > report_merged.txt
cmp report_stream.txt report_merged.txt

echo "ci_gates: mixed-fleet sharded vs serial byte identity" >&2
# Heterogeneous composition: the device-class dimension must survive
# the sharded merge path bit for bit, and the report must actually
# carry the device-class breakdown.
"$BIN" --exp all --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
    --engine streaming --corruption worst --workers "$WORKERS" \
    --fleet mixed > report_mixed_sharded.txt
"$BIN" --exp all --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
    --engine streaming --corruption worst --workers "$WORKERS" \
    --fleet mixed --merge serial > report_mixed_serial.txt
cmp report_mixed_sharded.txt report_mixed_serial.txt
grep -q "device class" report_mixed_sharded.txt
# And the default composition must NOT grow the section: the
# homogeneous report stays byte-compatible with the pre-fleet output.
if grep -q "device class" report_stream.txt; then
    echo "ci_gates: default fleet unexpectedly renders device classes" >&2
    exit 1
fi

echo "ci_gates: partial merge smoke (shard 2 withheld)" >&2
# One shard file missing: strict merge must refuse; --partial must
# exit zero, fold the present shards, and name the hole.
if "$BIN" merge-checkpoints partial.bin shard0.bin shard1.bin shard3.bin \
    --seed "$SEED" --phones "$PHONES" --days "$DAYS" --corruption worst \
    > /dev/null 2>&1; then
    echo "ci_gates: strict merge accepted an incomplete cover" >&2
    exit 1
fi
"$BIN" merge-checkpoints partial.bin shard0.bin shard1.bin shard3.bin \
    --seed "$SEED" --phones "$PHONES" --days "$DAYS" --corruption worst \
    --partial > report_partial.txt
grep -q "missing phone interval" report_partial.txt
if cmp -s report_stream.txt report_partial.txt; then
    echo "ci_gates: partial report impossibly matches the full fleet" >&2
    exit 1
fi

echo "ci_gates: all gates passed" >&2
