#!/usr/bin/env bash
# CI minimize-smoke gate: drive the fault-signature pipeline end to
# end at CI scale — extract the signature catalog from a 250-phone
# worst-corruption campaign, minimize one signature under a
# wall-clock budget, and demand the emitted single-phone repro config
# is replay-verified, within the day budget, and byte-identical on a
# second run. Shares the temp-dir discipline of ci_gates.sh: an
# aborted gate leaves no litter behind.
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

SEED="${SEED:-2005}"
PHONES="${PHONES:-250}"
DAYS="${DAYS:-60}"
SIG_INDEX="${SIG_INDEX:-0}"
# Wall-clock budget for one minimize run. The search is bounded by
# --max-seeds x --max-days probes; the budget catches a probe-cost
# regression rather than racing the search itself.
BUDGET_SECS="${BUDGET_SECS:-180}"

cargo build --release -p symfail-bench --bin repro >/dev/null
BIN="$ROOT/target/release/repro"

TMP="$(mktemp -d "${TMPDIR:-/tmp}/symfail-minimize.XXXXXX")"
trap 'rm -rf "$TMP"' EXIT
cd "$TMP"

echo "minimize_smoke: extracting signatures ($PHONES phones, $DAYS days, worst corruption)" >&2
"$BIN" extract-signatures --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
    --corruption worst --signature-json sigs.json
grep -q '"signature"' sigs.json

echo "minimize_smoke: minimizing signature $SIG_INDEX (budget ${BUDGET_SECS}s)" >&2
timeout "$BUDGET_SECS" "$BIN" minimize --signature-json sigs.json \
    --signature-index "$SIG_INDEX" --out min_a.json 2>min_a.log
cat min_a.log >&2
grep -q "replay-verified" min_a.log

echo "minimize_smoke: emitted config must fit the 10-day budget" >&2
grep -Eq '"days": (10|[1-9]),' min_a.json

echo "minimize_smoke: re-minimize must be byte-identical" >&2
timeout "$BUDGET_SECS" "$BIN" minimize --signature-json sigs.json \
    --signature-index "$SIG_INDEX" --out min_b.json 2>/dev/null
cmp min_a.json min_b.json

echo "minimize_smoke: ok" >&2
