#!/usr/bin/env bash
# Fleet-scale codec/pipeline datapoints: for each phone count in
# PHONES_LIST, runs the campaign twice — staged (isolating the parse
# stage's wall clock, which is what the throughput number means) and
# fused (campaign+parse on the same workers, the production path) —
# and assembles the per-scale numbers into one JSON document.
#
# If a previous document exists (the committed baseline, or $BASELINE),
# the script gates on it: any phone count whose staged parse MB/s falls
# below MIN_RATIO of the baseline fails the run. The fresh document is
# only written once the gate passes, so a failing run never overwrites
# the baseline it was judged against.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_scale.json}"
SEED="${SEED:-2005}"
DAYS="${DAYS:-425}"
WORKERS="${WORKERS:-4}"
PHONES_LIST="${PHONES_LIST:-25 250 1000}"
BASELINE="${BASELINE:-BENCH_scale.json}"
MIN_RATIO="${MIN_RATIO:-0.8}"

cargo build --release -p symfail-bench --bin repro >/dev/null
BIN=target/release/repro

tmp_staged="$(mktemp)"
tmp_fused="$(mktemp)"
tmp_out="$(mktemp)"
trap 'rm -f "$tmp_staged" "$tmp_fused" "$tmp_out"' EXIT

# First numeric value of a key in a timing-JSON dump.
jget() { grep -o "\"$2\": [0-9.]*" "$1" | head -n1 | awk '{print $2}'; }
# Wall-clock total: the sum of every stage's seconds.
jwall() {
    awk -F'"seconds": ' '/"stage"/ { split($2, a, ","); s += a[1] }
        END { printf "%.6f", s }' "$1"
}

{
    printf '{\n'
    printf '  "schema": "symfail-bench-scale/1",\n'
    printf '  "seed": %s,\n' "$SEED"
    printf '  "days": %s,\n' "$DAYS"
    printf '  "workers": %s,\n' "$WORKERS"
    printf '  "points": [\n'
    first=1
    for phones in $PHONES_LIST; do
        echo "bench_scale: $phones phones x $DAYS days..." >&2
        "$BIN" --exp defects --seed "$SEED" --phones "$phones" --days "$DAYS" \
            --workers "$WORKERS" --pipeline staged \
            --timing-json "$tmp_staged" >/dev/null 2>&1
        "$BIN" --exp defects --seed "$SEED" --phones "$phones" --days "$DAYS" \
            --workers "$WORKERS" --pipeline fused \
            --timing-json "$tmp_fused" >/dev/null 2>&1

        parse_seconds="$(jget "$tmp_staged" parse_seconds)"
        parse_bytes="$(jget "$tmp_staged" parse_bytes)"
        parse_lines="$(jget "$tmp_staged" parse_lines)"
        mbps="$(awk -v b="$parse_bytes" -v s="$parse_seconds" \
            'BEGIN { printf "%.2f", (s > 0) ? b / s / 1048576 : 0 }')"

        [ "$first" = 1 ] || printf ',\n'
        first=0
        printf '    {"phones": %s,\n' "$phones"
        printf '     "parse_seconds": %s,\n' "$parse_seconds"
        printf '     "parse_bytes": %s,\n' "$parse_bytes"
        printf '     "parse_lines": %s,\n' "$parse_lines"
        printf '     "parse_mb_per_s": %s,\n' "$mbps"
        printf '     "staged_wall_seconds": %s,\n' "$(jwall "$tmp_staged")"
        printf '     "fused_wall_seconds": %s,\n' "$(jwall "$tmp_fused")"
        printf '     "fused_parse_cpu_seconds": %s,\n' "$(jget "$tmp_fused" parse_seconds)"
        printf '     "fused_total_allocs": %s}' "$(jget "$tmp_fused" total_allocs)"
    done
    printf '\n  ]\n}\n'
} >"$tmp_out"

# Regression gate: staged parse MB/s per phone count vs the baseline.
pairs() {
    awk -F'[:,]' '/"phones"/ { p = $2 + 0 }
        /"parse_mb_per_s"/ { printf "%d %s\n", p, $2 + 0 }' "$1"
}
if [ -f "$BASELINE" ]; then
    fail=0
    while read -r phones new_mbps; do
        base_mbps="$(pairs "$BASELINE" | awk -v p="$phones" '$1 == p { print $2 }')"
        [ -n "$base_mbps" ] || continue
        if ! awk -v a="$new_mbps" -v b="$base_mbps" -v r="$MIN_RATIO" \
            'BEGIN { exit !(a + 0 >= r * b) }'; then
            echo "bench_scale: REGRESSION at $phones phones:" \
                "$new_mbps MB/s < $MIN_RATIO x baseline $base_mbps MB/s" >&2
            fail=1
        else
            echo "bench_scale: $phones phones: $new_mbps MB/s" \
                "(baseline $base_mbps MB/s) ok" >&2
        fi
    done < <(pairs "$tmp_out")
    [ "$fail" = 0 ] || exit 1
fi

cp "$tmp_out" "$OUT"
echo "wrote $OUT"
