#!/usr/bin/env bash
# Fleet-scale codec/pipeline datapoints: for each phone count in
# PHONES_LIST, runs the campaign three times — staged (isolating the
# parse stage's wall clock, which is what the throughput number
# means), fused (campaign+parse on the same workers, the production
# batch path) and streaming (campaign+parse+fold with per-phone flash
# and dataset reclaim, the bounded-memory path) — and assembles the
# per-scale numbers into one JSON document.
#
# If a previous document exists (the committed baseline, or $BASELINE),
# the script gates on it: any phone count whose staged parse MB/s falls
# below MIN_RATIO of the baseline fails the run. Three within-run gates
# cover the streaming engine: at every phone count >= STREAM_GATE_MIN
# its peak live heap must stay under STREAM_PEAK_RATIO of the batch
# (fused) peak and its wall clock within STREAM_WALL_RATIO of the fused
# wall clock; and across the whole sweep the *last* point's streaming
# parse MB/s must hold at least CLIFF_RATIO of the first point's — the
# anti-cliff gate that pins the sharded merger's flat throughput
# profile at fleet scale. A heterogeneous MIXED_PHONES-phone datapoint
# (`--fleet mixed`) rides under the same anti-cliff floor: device-class
# skew concentrates cost on communicator phones, and the grouped
# accumulators must not reopen the cliff. The fresh document is only
# written once every gate passes, so a failing run never overwrites the
# baseline it was judged against.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_scale.json}"
SEED="${SEED:-2005}"
DAYS="${DAYS:-425}"
WORKERS="${WORKERS:-4}"
PHONES_LIST="${PHONES_LIST:-25 250 1000}"
BASELINE="${BASELINE:-BENCH_scale.json}"
MIN_RATIO="${MIN_RATIO:-0.8}"
STREAM_GATE_MIN="${STREAM_GATE_MIN:-100}"
STREAM_PEAK_RATIO="${STREAM_PEAK_RATIO:-0.5}"
STREAM_WALL_RATIO="${STREAM_WALL_RATIO:-1.25}"
CLIFF_RATIO="${CLIFF_RATIO:-0.5}"
MIXED_PHONES="${MIXED_PHONES:-250}"

cargo build --release -p symfail-bench --bin repro >/dev/null
BIN=target/release/repro

tmp_staged="$(mktemp)"
tmp_fused="$(mktemp)"
tmp_stream="$(mktemp)"
tmp_mixed="$(mktemp)"
tmp_out="$(mktemp)"
trap 'rm -f "$tmp_staged" "$tmp_fused" "$tmp_stream" "$tmp_mixed" "$tmp_out"' EXIT

# First numeric value of a key in a timing-JSON dump.
jget() { grep -o "\"$2\": [0-9.]*" "$1" | head -n1 | awk '{print $2}'; }
# Wall-clock total: the sum of every stage's seconds.
jwall() {
    awk -F'"seconds": ' '/"stage"/ { split($2, a, ","); s += a[1] }
        END { printf "%.6f", s }' "$1"
}

{
    printf '{\n'
    printf '  "schema": "symfail-bench-scale/4",\n'
    printf '  "seed": %s,\n' "$SEED"
    printf '  "days": %s,\n' "$DAYS"
    printf '  "workers": %s,\n' "$WORKERS"
    printf '  "points": [\n'
    first=1
    for phones in $PHONES_LIST; do
        echo "bench_scale: $phones phones x $DAYS days..." >&2
        "$BIN" --exp defects --seed "$SEED" --phones "$phones" --days "$DAYS" \
            --workers "$WORKERS" --pipeline staged \
            --timing-json "$tmp_staged" >/dev/null 2>&1
        "$BIN" --exp defects --seed "$SEED" --phones "$phones" --days "$DAYS" \
            --workers "$WORKERS" --pipeline fused \
            --timing-json "$tmp_fused" >/dev/null 2>&1
        "$BIN" --exp defects --seed "$SEED" --phones "$phones" --days "$DAYS" \
            --workers "$WORKERS" --engine streaming \
            --timing-json "$tmp_stream" >/dev/null 2>&1

        parse_seconds="$(jget "$tmp_staged" parse_seconds)"
        parse_bytes="$(jget "$tmp_staged" parse_bytes)"
        parse_lines="$(jget "$tmp_staged" parse_lines)"
        mbps="$(awk -v b="$parse_bytes" -v s="$parse_seconds" \
            'BEGIN { printf "%.2f", (s > 0) ? b / s / 1048576 : 0 }')"
        s_parse_seconds="$(jget "$tmp_stream" parse_seconds)"
        s_parse_bytes="$(jget "$tmp_stream" parse_bytes)"
        s_mbps="$(awk -v b="$s_parse_bytes" -v s="$s_parse_seconds" \
            'BEGIN { printf "%.2f", (s > 0) ? b / s / 1048576 : 0 }')"
        worker_allocs="$(grep -o '"worker_alloc_calls": \[[^]]*\]' "$tmp_stream" \
            | head -n1 | sed 's/.*\[/[/')"

        [ "$first" = 1 ] || printf ',\n'
        first=0
        printf '    {"phones": %s,\n' "$phones"
        printf '     "parse_seconds": %s,\n' "$parse_seconds"
        printf '     "parse_bytes": %s,\n' "$parse_bytes"
        printf '     "parse_lines": %s,\n' "$parse_lines"
        printf '     "parse_mb_per_s": %s,\n' "$mbps"
        printf '     "staged_wall_seconds": %s,\n' "$(jwall "$tmp_staged")"
        printf '     "fused_wall_seconds": %s,\n' "$(jwall "$tmp_fused")"
        printf '     "fused_parse_cpu_seconds": %s,\n' "$(jget "$tmp_fused" parse_seconds)"
        printf '     "fused_total_allocs": %s,\n' "$(jget "$tmp_fused" total_allocs)"
        printf '     "fused_peak_alloc_bytes": %s,\n' "$(jget "$tmp_fused" peak_alloc_bytes)"
        printf '     "streaming_wall_seconds": %s,\n' "$(jwall "$tmp_stream")"
        printf '     "streaming_peak_alloc_bytes": %s,\n' "$(jget "$tmp_stream" peak_alloc_bytes)"
        printf '     "streaming_parse_seconds": %s,\n' "$s_parse_seconds"
        printf '     "streaming_parse_mb_per_s": %s,\n' "$s_mbps"
        printf '     "streaming_merge_wait_seconds": %s,\n' \
            "$(jget "$tmp_stream" merge_wait_seconds)"
        printf '     "streaming_merge_absorbed_runs": %s,\n' \
            "$(jget "$tmp_stream" merge_absorbed_runs)"
        printf '     "streaming_peak_pending_runs": %s,\n' \
            "$(jget "$tmp_stream" peak_pending_runs)"
        printf '     "streaming_peak_pending_phones": %s,\n' \
            "$(jget "$tmp_stream" peak_pending_phones)"
        printf '     "streaming_peak_pending_bytes": %s,\n' \
            "$(jget "$tmp_stream" peak_pending_bytes)"
        printf '     "streaming_worker_alloc_calls": %s,\n' "${worker_allocs:-[]}"
        printf '     "streaming_reclaimed_flash_bytes": %s}' \
            "$(jget "$tmp_stream" reclaimed_flash_bytes)"
    done
    printf '\n  ],\n'

    # The heterogeneous datapoint: same streaming path, mixed fleet.
    # Key names are deliberately distinct from the per-point keys so
    # the per-point gates above never pick this block up by accident.
    echo "bench_scale: mixed fleet $MIXED_PHONES phones x $DAYS days..." >&2
    "$BIN" --exp defects --seed "$SEED" --phones "$MIXED_PHONES" --days "$DAYS" \
        --workers "$WORKERS" --engine streaming --fleet mixed \
        --timing-json "$tmp_mixed" >/dev/null 2>&1
    m_seconds="$(jget "$tmp_mixed" parse_seconds)"
    m_bytes="$(jget "$tmp_mixed" parse_bytes)"
    m_mbps="$(awk -v b="$m_bytes" -v s="$m_seconds" \
        'BEGIN { printf "%.2f", (s > 0) ? b / s / 1048576 : 0 }')"
    printf '  "mixed_fleet": {"fleet": "mixed", "mixed_phones": %s,\n' "$MIXED_PHONES"
    printf '    "mixed_parse_seconds": %s,\n' "$m_seconds"
    printf '    "mixed_parse_bytes": %s,\n' "$m_bytes"
    printf '    "mixed_parse_mbps": %s,\n' "$m_mbps"
    printf '    "mixed_peak_alloc": %s}\n' "$(jget "$tmp_mixed" peak_alloc_bytes)"
    printf '}\n'
} >"$tmp_out"

# Within-run gates: the streaming engine must actually buy memory
# (peak < STREAM_PEAK_RATIO x batch peak) without giving up throughput
# (wall <= STREAM_WALL_RATIO x fused wall) once fleets are big enough
# for the comparison to be meaningful.
fail=0
while read -r phones fpeak speak fwall swall; do
    [ "$phones" -ge "$STREAM_GATE_MIN" ] || continue
    if ! awk -v s="$speak" -v f="$fpeak" -v r="$STREAM_PEAK_RATIO" \
        'BEGIN { exit !(s + 0 < r * f) }'; then
        echo "bench_scale: MEMORY GATE at $phones phones:" \
            "streaming peak $speak B >= $STREAM_PEAK_RATIO x batch peak $fpeak B" >&2
        fail=1
    else
        echo "bench_scale: $phones phones: streaming peak $speak B" \
            "vs batch peak $fpeak B ok" >&2
    fi
    if ! awk -v s="$swall" -v f="$fwall" -v r="$STREAM_WALL_RATIO" \
        'BEGIN { exit !(s + 0 <= r * f) }'; then
        echo "bench_scale: THROUGHPUT GATE at $phones phones:" \
            "streaming wall ${swall}s > $STREAM_WALL_RATIO x fused wall ${fwall}s" >&2
        fail=1
    fi
# Values stay strings end to end: awk's %d clamps 64-bit peaks to
# INT_MAX on some implementations (mawk), which would corrupt the gate
# inputs at multi-GiB batch peaks.
done < <(awk -F'[:,]' '/"phones"/ { p = $2 }
    /"fused_peak_alloc_bytes"/ { fp = $2 }
    /"streaming_peak_alloc_bytes"/ { sp = $2 }
    /"fused_wall_seconds"/ { fw = $2 }
    /"streaming_wall_seconds"/ { sw = $2 }
    /"streaming_reclaimed_flash_bytes"/ { printf "%s %s %s %s %s\n", p, fp, sp, fw, sw }' \
    "$tmp_out")
[ "$fail" = 0 ] || exit 1

# Anti-cliff gate: streaming parse throughput must stay flat across
# the sweep — the last (largest) point holds >= CLIFF_RATIO of the
# first point's MB/s. This is the regression tripwire for the
# 1000-phone throughput cliff the sharded merger removed.
read -r first_mbps last_mbps < <(awk -F'[:,]' \
    '/"streaming_parse_mb_per_s"/ { if (f == "") f = $2 + 0; l = $2 + 0 }
     END { printf "%s %s\n", f, l }' "$tmp_out")
if ! awk -v f="$first_mbps" -v l="$last_mbps" -v r="$CLIFF_RATIO" \
    'BEGIN { exit !(l + 0 >= r * f) }'; then
    echo "bench_scale: CLIFF GATE: streaming $last_mbps MB/s at the" \
        "largest fleet < $CLIFF_RATIO x $first_mbps MB/s at the smallest" >&2
    exit 1
fi
echo "bench_scale: cliff gate ok: streaming $first_mbps MB/s ->" \
    "$last_mbps MB/s across the sweep" >&2

# The heterogeneous datapoint sits under the same anti-cliff floor:
# a mixed fleet's class-skewed per-phone cost must not reopen the
# throughput cliff the sharded merger removed.
mixed_mbps="$(awk -F'[:,]' '/"mixed_parse_mbps"/ { print $2 + 0 }' "$tmp_out")"
if ! awk -v f="$first_mbps" -v m="$mixed_mbps" -v r="$CLIFF_RATIO" \
    'BEGIN { exit !(m + 0 >= r * f) }'; then
    echo "bench_scale: MIXED-FLEET CLIFF GATE: $mixed_mbps MB/s at" \
        "$MIXED_PHONES heterogeneous phones < $CLIFF_RATIO x $first_mbps MB/s" >&2
    exit 1
fi
echo "bench_scale: mixed-fleet gate ok: $mixed_mbps MB/s at" \
    "$MIXED_PHONES heterogeneous phones" >&2

# Regression gate: staged parse MB/s per phone count vs the baseline.
pairs() {
    awk -F'[:,]' '/"phones"/ { p = $2 + 0 }
        /"parse_mb_per_s"/ { printf "%d %s\n", p, $2 + 0 }' "$1"
}
if [ -f "$BASELINE" ]; then
    fail=0
    while read -r phones new_mbps; do
        base_mbps="$(pairs "$BASELINE" | awk -v p="$phones" '$1 == p { print $2 }')"
        [ -n "$base_mbps" ] || continue
        if ! awk -v a="$new_mbps" -v b="$base_mbps" -v r="$MIN_RATIO" \
            'BEGIN { exit !(a + 0 >= r * b) }'; then
            echo "bench_scale: REGRESSION at $phones phones:" \
                "$new_mbps MB/s < $MIN_RATIO x baseline $base_mbps MB/s" >&2
            fail=1
        else
            echo "bench_scale: $phones phones: $new_mbps MB/s" \
                "(baseline $base_mbps MB/s) ok" >&2
        fi
    done < <(pairs "$tmp_out")
    [ "$fail" = 0 ] || exit 1
fi

cp "$tmp_out" "$OUT"
echo "wrote $OUT"
