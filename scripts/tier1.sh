#!/usr/bin/env bash
# Tier-1 verification: lint gates first (cheap, catch style drift
# before a long build), then build, test, and smoke-run every
# benchmark in test mode (one iteration each, no timing) so a broken
# bench fails CI rather than the next profiling session.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace
cargo bench --workspace -- --test
