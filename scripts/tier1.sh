#!/usr/bin/env bash
# Tier-1 verification: lint gates first (cheap, catch style drift
# before a long build), then build, test, and smoke-run every
# benchmark in test mode (one iteration each, no timing) so a broken
# bench fails CI rather than the next profiling session.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace
# The crash-resume harness, the multi-process merge harness, the
# golden-report pin and the signature/minimize replay layer are the
# tier-1 gates; run them by name so a test filter or workspace change
# can never silently drop them.
cargo test -q --test checkpoint_resume
cargo test -q --test merge_checkpoints
cargo test -q --test golden_report
cargo test -q --test signature_props
cargo test -q --test minimize_repro
cargo test -q -p symfail-bench --test cli_shard
cargo bench --workspace -- --test

# `--gates` additionally runs the CI byte-identity/throughput/resume
# gates (the exact script the tier1 CI job runs). fmt and clippy above
# already failed fast if CI's lint job would — so a green
# `tier1.sh --gates` is a green CI, minus the runner.
if [ "${1:-}" = "--gates" ]; then
    scripts/ci_gates.sh
fi
