#!/usr/bin/env bash
# Tier-1 verification: lint gates first (cheap, catch style drift
# before a long build), then build, test, and smoke-run every
# benchmark in test mode (one iteration each, no timing) so a broken
# bench fails CI rather than the next profiling session.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace
# The crash-resume harness is the tier-1 gate for checkpointed
# campaigns; run it by name so a test filter or workspace change can
# never silently drop it.
cargo test -q --test checkpoint_resume
cargo bench --workspace -- --test
