#!/usr/bin/env bash
# Multi-process sharding datapoints: runs the 1000-phone campaign as
# 1, 2, 4 and 8 shard *processes* (real `repro --shard i/N`
# invocations, each writing a schema-v4 checkpoint), merges each set
# with `repro merge-checkpoints`, and demands the merged report is
# byte-identical to the single-process run at every shard count.
#
# Wall-clock model: one process per machine. The shards of one split
# run back to back on this host (CI runners expose few cores, and
# co-scheduling N CPU-bound processes on one core would measure the
# scheduler, not the pipeline), so the *distributed* wall-clock is the
# critical path — max(shard wall) + merge wall — exactly what N
# single-process machines plus one merge step would take. The speedup
# column is single wall / critical-path wall.
#
# BALANCE picks the shard planner (`uniform` is the fixed i/N formula
# split; `static` is the cost-balanced planner — the default, because
# stratified enrollment makes early phone ids ~3x more expensive and
# the uniform first shard dominates the critical path). SPEEDUP_FLOORS
# is a list of `processes:floor` pairs; each listed point must reach
# its floor or the run fails. The JSON is only written once the
# identity and speedup gates pass.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_shard.json}"
SEED="${SEED:-2005}"
PHONES="${PHONES:-1000}"
DAYS="${DAYS:-425}"
CORRUPTION="${CORRUPTION:-worst}"
SHARD_COUNTS="${SHARD_COUNTS:-2 4 8}"
BALANCE="${BALANCE:-static}"
SPEEDUP_FLOORS="${SPEEDUP_FLOORS:-2:1.7 4:3.0}"

cargo build --release -p symfail-bench --bin repro >/dev/null
BIN="$(pwd)/target/release/repro"

TMP="$(mktemp -d "${TMPDIR:-/tmp}/symfail-shard.XXXXXX")"
trap 'rm -rf "$TMP"' EXIT
cd "$TMP"

now() { date +%s.%N; }
elapsed() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", b - a }'; }

echo "bench_shard: single process, $PHONES phones x $DAYS days..." >&2
t0="$(now)"
"$BIN" --exp all --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
    --engine streaming --corruption "$CORRUPTION" --workers 1 \
    > report_single.txt
single_wall="$(elapsed "$t0" "$(now)")"
echo "bench_shard: single wall ${single_wall}s" >&2

points="    {\"processes\": 1, \"max_shard_wall_seconds\": $single_wall,
     \"merge_wall_seconds\": 0.0, \"wall_seconds\": $single_wall,
     \"speedup\": 1.00}"
fail=0
for n in $SHARD_COUNTS; do
    "$BIN" plan-shards --shards "$n" --seed "$SEED" --phones "$PHONES" \
        --days "$DAYS" --corruption "$CORRUPTION" --balance "$BALANCE" >&2
    max_shard=0
    files=""
    for i in $(seq 0 $((n - 1))); do
        rm -f "shard$i.bin"
        t0="$(now)"
        "$BIN" --exp targets --seed "$SEED" --phones "$PHONES" \
            --days "$DAYS" --engine streaming --corruption "$CORRUPTION" \
            --workers 1 --shard "$i/$n" --balance "$BALANCE" \
            --checkpoint "shard$i.bin" > /dev/null
        w="$(elapsed "$t0" "$(now)")"
        echo "bench_shard: $n-way shard $i wall ${w}s" >&2
        max_shard="$(awk -v a="$max_shard" -v b="$w" \
            'BEGIN { printf "%.3f", (b > a) ? b : a }')"
        files="$files shard$i.bin"
    done
    t0="$(now)"
    # shellcheck disable=SC2086 # $files is a deliberate word list
    "$BIN" merge-checkpoints merged.bin $files \
        --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
        --corruption "$CORRUPTION" > report_merged.txt 2>/dev/null
    merge_wall="$(elapsed "$t0" "$(now)")"
    if ! cmp report_single.txt report_merged.txt; then
        echo "bench_shard: IDENTITY GATE: $n-way merge differs from" \
            "the single-process report" >&2
        exit 1
    fi
    wall="$(awk -v m="$max_shard" -v g="$merge_wall" \
        'BEGIN { printf "%.3f", m + g }')"
    speedup="$(awk -v s="$single_wall" -v w="$wall" \
        'BEGIN { printf "%.2f", (w > 0) ? s / w : 0 }')"
    echo "bench_shard: $n processes: max shard ${max_shard}s +" \
        "merge ${merge_wall}s = ${wall}s (speedup ${speedup}x)" >&2
    for pair in $SPEEDUP_FLOORS; do
        at="${pair%%:*}"
        floor="${pair#*:}"
        if [ "$n" = "$at" ] && ! awk -v s="$speedup" -v f="$floor" \
            'BEGIN { exit !(s + 0 >= f) }'; then
            echo "bench_shard: SPEEDUP GATE: ${speedup}x at $n processes" \
                "< floor ${floor}x" >&2
            fail=1
        fi
    done
    points="$points,
    {\"processes\": $n, \"max_shard_wall_seconds\": $max_shard,
     \"merge_wall_seconds\": $merge_wall, \"wall_seconds\": $wall,
     \"speedup\": $speedup}"
done
[ "$fail" = 0 ] || exit 1

cd - >/dev/null
{
    printf '{\n'
    printf '  "schema": "symfail-bench-shard/2",\n'
    printf '  "seed": %s,\n' "$SEED"
    printf '  "phones": %s,\n' "$PHONES"
    printf '  "days": %s,\n' "$DAYS"
    printf '  "corruption": "%s",\n' "$CORRUPTION"
    printf '  "balance": "%s",\n' "$BALANCE"
    printf '  "workers_per_process": 1,\n'
    printf '  "model": "critical path: shards run back to back on one host; distributed wall = max(shard wall) + merge wall (one process per machine)",\n'
    printf '  "single_wall_seconds": %s,\n' "$single_wall"
    printf '  "points": [\n%s\n  ]\n}\n' "$points"
} >"$OUT"
echo "wrote $OUT"
