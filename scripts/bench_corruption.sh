#!/usr/bin/env bash
# Clean-vs-worst-case parse throughput datapoint: runs the paper-sized
# campaign twice — once with pristine flash, once under the `worst`
# corruption profile — and merges the two `--timing-json` dumps into a
# single document. Throughput = parse_bytes / the "parse" stage
# seconds of each arm; the raw numbers are kept so CI can trend them.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_corruption.json}"
SEED="${SEED:-2005}"
PHONES="${PHONES:-25}"
DAYS="${DAYS:-425}"
WORKERS="${WORKERS:-4}"

cargo build --release -p symfail-bench --bin repro >/dev/null
BIN=target/release/repro

tmp_clean="$(mktemp)"
tmp_worst="$(mktemp)"
trap 'rm -f "$tmp_clean" "$tmp_worst"' EXIT

# Staged pipeline: the parse stage runs in isolation, so its seconds
# are the wall-clock throughput this document exists to trend.
"$BIN" --exp defects --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
    --workers "$WORKERS" --pipeline staged --corruption none \
    --timing-json "$tmp_clean" >/dev/null
"$BIN" --exp defects --seed "$SEED" --phones "$PHONES" --days "$DAYS" \
    --workers "$WORKERS" --pipeline staged --corruption worst \
    --timing-json "$tmp_worst" >/dev/null

# Indent an embedded JSON document by two spaces (first line excluded,
# so it sits after the key on the same line).
embed() { sed -e 's/^/  /' -e '1s/^  //' "$1"; }

{
    printf '{\n'
    printf '  "schema": "symfail-bench-corruption/1",\n'
    printf '  "clean": %s,\n' "$(embed "$tmp_clean")"
    printf '  "worst": %s\n' "$(embed "$tmp_worst")"
    printf '}\n'
} >"$OUT"

echo "wrote $OUT"
